package service_test

// Regression test for ?follow=1 client disconnects: a follower that
// goes away mid-stream must release its handler goroutine promptly
// (the cond-wait is woken by context cancellation, not the next
// record), and the job's record stream must stay fully intact for
// later readers.

import (
	"bufio"
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"plurality/internal/mc"
	"plurality/internal/service"
)

func TestFollowClientDisconnectNoLeak(t *testing.T) {
	s, ts := boot(t, service.Options{Workers: 2})
	defer func() { ts.Close(); s.Close() }()

	// A job that produces records steadily but never finishes within the
	// test: each replicate burns its 20-round budget on a balanced
	// population.
	spec := service.JobSpec{Rule: "3majority", Engine: "sampled", N: 50_000, K: 2,
		Bias: "0", Seed: 11, Replicates: service.MaxReplicates, MaxRounds: 20}
	status, info, raw := submit(t, ts, spec, "?wait=0")
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	waitJob(t, ts, info.ID, ">=2 records", func(i service.JobInfo) bool { return i.Records >= 2 })

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 4; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			ts.URL+"/v1/jobs/"+info.ID+"/records?follow=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Prove the stream is live (at least one record arrives), then
		// abandon it mid-flight.
		if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
			t.Fatalf("follower %d: reading first record: %v", i, err)
		}
		defer resp.Body.Close()
	}
	cancel()

	// Every follower handler must unwind even though the job keeps
	// appending records only every few milliseconds — the disconnect
	// itself wakes the cond-wait.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d long after follower disconnects, baseline %d — follow handlers leaked", n, base)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The record stream is intact: the job kept running through the
	// disconnects, and a fresh snapshot is well-formed, contiguous JSONL.
	after := waitJob(t, ts, info.ID, "more records", func(i service.JobInfo) bool { return i.Records >= 4 })
	rawRecs := recordBytes(t, ts, info.ID)
	recs, _ := mc.ScanRecords(rawRecs)
	if len(recs) < 4 {
		t.Fatalf("snapshot has %d records, want >= 4 (job reported %d)", len(recs), after.Records)
	}
	for i, rec := range recs {
		if rec.Rep != i {
			t.Fatalf("record %d has rep %d — stream corrupted by follower disconnects", i, rec.Rep)
		}
	}

	// Cleanup: stop the never-ending job so Close doesn't wait on it.
	resp, err := http.Post(ts.URL+"/v1/jobs/"+info.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJob(t, ts, info.ID, "cancelled", func(i service.JobInfo) bool { return i.State.Terminal() })
}
