package trace

import (
	"strings"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func recordRun(t *testing.T, n int64, k int, s int64, seed uint64) *Recorder {
	t.Helper()
	init := colorcfg.Biased(n, k, s)
	rec := NewRecorder(n)
	rec.ObserveInitial(init)
	e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
	res := core.Run(e, core.Options{
		MaxRounds: 10000,
		Rand:      rng.New(seed),
		OnRound:   rec.Observe,
	})
	if !res.WonInitialPlurality {
		t.Fatalf("trace run did not converge to plurality")
	}
	return rec
}

func TestRecorderCapturesTrajectory(t *testing.T) {
	rec := recordRun(t, 100000, 8, 7000, 1)
	if rec.Len() < 5 {
		t.Fatalf("too few points: %d", rec.Len())
	}
	first := rec.Points[0]
	if first.Round != 0 || first.CMax == 0 {
		t.Fatalf("bad initial point: %+v", first)
	}
	last := rec.Points[rec.Len()-1]
	if last.CMax != 100000 || last.MinorityMass != 0 {
		t.Fatalf("final point not monochromatic: %+v", last)
	}
	// Rounds strictly increasing.
	for i := 1; i < rec.Len(); i++ {
		if rec.Points[i].Round != rec.Points[i-1].Round+1 {
			t.Fatalf("round gap at %d", i)
		}
	}
}

func TestPhaseOf(t *testing.T) {
	n := int64(10000)
	cases := []struct {
		p    Point
		want Phase
	}{
		{Point{CMax: 3000, MinorityMass: 7000}, PhaseGrowth},
		{Point{CMax: 7000, MinorityMass: 3000}, PhaseDecay},
		{Point{CMax: 9950, MinorityMass: 50}, PhaseExtinction},
	}
	for _, c := range cases {
		if got := PhaseOf(c.p, n, 0); got != c.want {
			t.Errorf("PhaseOf(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Explicit cut.
	if PhaseOf(Point{CMax: 9400, MinorityMass: 600}, n, 700) != PhaseExtinction {
		t.Error("explicit polylog cut ignored")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseGrowth.String() != "growth" || PhaseDecay.String() != "decay" ||
		PhaseExtinction.String() != "extinction" {
		t.Error("phase names wrong")
	}
	if Phase(42).String() == "" {
		t.Error("unknown phase renders empty")
	}
}

func TestSegmentsOrdered(t *testing.T) {
	rec := recordRun(t, 100000, 8, 7000, 2)
	segs := rec.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	// Phases must appear in proof order: growth (maybe) then decay (maybe)
	// then extinction; no going back.
	lastPhase := Phase(-1)
	for _, s := range segs {
		if s.Phase < lastPhase {
			t.Fatalf("phase regression: %v after %v", s.Phase, lastPhase)
		}
		lastPhase = s.Phase
		if s.Rounds() <= 0 {
			t.Fatalf("empty segment %+v", s)
		}
	}
	// The growth phase must actually grow the bias.
	if segs[0].Phase == PhaseGrowth && segs[0].Rounds() > 2 && segs[0].GrowthRate <= 1 {
		t.Errorf("growth segment rate %v <= 1", segs[0].GrowthRate)
	}
	// Segment round ranges must tile the trajectory.
	if segs[0].FromRound != 0 {
		t.Errorf("first segment starts at %d", segs[0].FromRound)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FromRound != segs[i-1].ToRound+1 {
			t.Errorf("segment gap between %d and %d", segs[i-1].ToRound, segs[i].FromRound)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	rec := recordRun(t, 50000, 4, 5000, 3)
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != rec.Len()+1 {
		t.Fatalf("CSV has %d lines for %d points", len(lines), rec.Len())
	}
	if !strings.HasPrefix(lines[0], "round,c_max,") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Fatalf("bad first row: %q", lines[1])
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	rec := recordRun(t, 50000, 4, 5000, 4)
	s := rec.Summary()
	if !strings.Contains(s, "extinction") {
		t.Fatalf("summary missing extinction phase:\n%s", s)
	}
}

func TestEmptyRecorder(t *testing.T) {
	rec := NewRecorder(100)
	if rec.Segments() != nil {
		t.Error("empty recorder must have no segments")
	}
	if rec.Summary() != "" {
		t.Error("empty recorder summary must be empty")
	}
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "round,") {
		t.Error("CSV header missing for empty recorder")
	}
}
