// Package trace records per-round trajectories of a consensus process and
// analyzes them: phase segmentation following the paper's proof structure
// (Lemma 3 growth / Lemma 4 decay / Lemma 5 extinction), growth-rate
// estimation, and CSV export for external plotting.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"plurality/internal/colorcfg"
)

// Point is one recorded round.
type Point struct {
	Round int
	// CMax is the plurality count c_1.
	CMax int64
	// CSecond is the runner-up count c_2.
	CSecond int64
	// Bias is c_1 - c_2.
	Bias int64
	// MinorityMass is n - c_1.
	MinorityMass int64
	// Support is the number of colors still alive.
	Support int
	// Plurality is the current plurality color.
	Plurality colorcfg.Color
}

// Recorder captures a Point per round. Use Observe as a core.Options
// OnRound hook (record the initial configuration separately with
// ObserveInitial).
type Recorder struct {
	N      int64
	Points []Point
}

// NewRecorder returns a Recorder for a population of n agents.
func NewRecorder(n int64) *Recorder {
	return &Recorder{N: n}
}

// ObserveInitial records round 0.
func (rec *Recorder) ObserveInitial(c colorcfg.Config) {
	rec.Observe(0, c)
}

// Observe records one round; it has the signature of core.Options.OnRound.
func (rec *Recorder) Observe(round int, c colorcfg.Config) {
	first, second := c.TopTwo()
	rec.Points = append(rec.Points, Point{
		Round:        round,
		CMax:         first,
		CSecond:      second,
		Bias:         first - second,
		MinorityMass: rec.N - first,
		Support:      c.Support(),
		Plurality:    c.Plurality(),
	})
}

// Len returns the number of recorded points.
func (rec *Recorder) Len() int { return len(rec.Points) }

// WriteCSV emits the trajectory as CSV with a header row.
func (rec *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "c_max", "c_second", "bias", "minority_mass", "support", "plurality"}); err != nil {
		return err
	}
	for _, p := range rec.Points {
		err := cw.Write([]string{
			strconv.Itoa(p.Round),
			strconv.FormatInt(p.CMax, 10),
			strconv.FormatInt(p.CSecond, 10),
			strconv.FormatInt(p.Bias, 10),
			strconv.FormatInt(p.MinorityMass, 10),
			strconv.Itoa(p.Support),
			strconv.FormatInt(int64(p.Plurality), 10),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trajectory previously written by WriteCSV back into a
// Recorder — the round-trip used by tooling that post-processes exported
// traces. The recorder's N is recovered from the first data row
// (c_max + minority_mass); an empty trajectory (header only) yields an
// empty recorder with N = 0.
func ReadCSV(r io.Reader) (*Recorder, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: missing CSV header: %w", err)
	}
	want := []string{"round", "c_max", "c_second", "bias", "minority_mass", "support", "plurality"}
	if len(header) != len(want) {
		return nil, fmt.Errorf("trace: header has %d columns, want %d", len(header), len(want))
	}
	for i, h := range header {
		if h != want[i] {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, h, want[i])
		}
	}
	rec := &Recorder{}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return rec, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		ints := make([]int64, len(row))
		for i, f := range row {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad field %q: %w", f, err)
			}
			ints[i] = v
		}
		p := Point{
			Round:        int(ints[0]),
			CMax:         ints[1],
			CSecond:      ints[2],
			Bias:         ints[3],
			MinorityMass: ints[4],
			Support:      int(ints[5]),
			Plurality:    colorcfg.Color(ints[6]),
		}
		if rec.Len() == 0 {
			rec.N = p.CMax + p.MinorityMass
		}
		rec.Points = append(rec.Points, p)
	}
}

// Phase identifies one of the paper's three analysis phases.
type Phase int

// The phases follow the Theorem 1 proof structure.
const (
	// PhaseGrowth: c1 < 2n/3 — Lemma 3's multiplicative bias growth.
	PhaseGrowth Phase = iota
	// PhaseDecay: 2n/3 <= c1 < n - polylog — Lemma 4's geometric decay of
	// the minority mass.
	PhaseDecay
	// PhaseExtinction: c1 >= n - polylog — Lemma 5's last step.
	PhaseExtinction
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseGrowth:
		return "growth"
	case PhaseDecay:
		return "decay"
	case PhaseExtinction:
		return "extinction"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// PhaseOf classifies a point given the population size and the extinction
// threshold (pass <= 0 for the paper's log²n-flavored default of
// n - minority < polylogCut, with polylogCut = max(100, n/1000)).
func PhaseOf(p Point, n int64, polylogCut int64) Phase {
	if polylogCut <= 0 {
		polylogCut = n / 1000
		if polylogCut < 100 {
			polylogCut = 100
		}
	}
	switch {
	case p.MinorityMass <= polylogCut:
		return PhaseExtinction
	case p.CMax >= 2*n/3:
		return PhaseDecay
	default:
		return PhaseGrowth
	}
}

// Segment is a maximal run of consecutive rounds in the same phase.
type Segment struct {
	Phase      Phase
	FromRound  int
	ToRound    int // inclusive
	FromCMax   int64
	ToCMax     int64
	GrowthRate float64 // mean per-round bias growth factor within the segment
}

// Rounds returns the segment length in rounds.
func (s Segment) Rounds() int { return s.ToRound - s.FromRound + 1 }

// Segments splits the trajectory into phase segments and estimates the
// per-round bias growth factor within each.
func (rec *Recorder) Segments() []Segment {
	if len(rec.Points) == 0 {
		return nil
	}
	var out []Segment
	cur := Segment{
		Phase:     PhaseOf(rec.Points[0], rec.N, 0),
		FromRound: rec.Points[0].Round,
		ToRound:   rec.Points[0].Round,
		FromCMax:  rec.Points[0].CMax,
		ToCMax:    rec.Points[0].CMax,
	}
	growthSum, growthCnt := 0.0, 0
	flush := func() {
		if growthCnt > 0 {
			cur.GrowthRate = growthSum / float64(growthCnt)
		}
		out = append(out, cur)
	}
	for i := 1; i < len(rec.Points); i++ {
		p := rec.Points[i]
		ph := PhaseOf(p, rec.N, 0)
		if ph != cur.Phase {
			flush()
			cur = Segment{Phase: ph, FromRound: p.Round, FromCMax: p.CMax}
			growthSum, growthCnt = 0, 0
		}
		prev := rec.Points[i-1]
		if prev.Bias > 0 {
			growthSum += float64(p.Bias) / float64(prev.Bias)
			growthCnt++
		}
		cur.ToRound = p.Round
		cur.ToCMax = p.CMax
	}
	flush()
	return out
}

// Summary renders a one-line-per-segment description.
func (rec *Recorder) Summary() string {
	out := ""
	for _, s := range rec.Segments() {
		out += fmt.Sprintf("%-10s rounds %d..%d (%d)  c_max %d → %d  bias growth ×%.3f/round\n",
			s.Phase, s.FromRound, s.ToRound, s.Rounds(), s.FromCMax, s.ToCMax, s.GrowthRate)
	}
	return out
}
