package trace

import (
	"reflect"
	"strings"
	"testing"

	"plurality/internal/colorcfg"
)

// TestRoundTripEmpty: a recorder with no points must survive
// WriteCSV → ReadCSV as an empty recorder (header only, N recovered as 0).
func TestRoundTripEmpty(t *testing.T) {
	rec := NewRecorder(500)
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty trajectory read back with %d points", back.Len())
	}
	if back.Segments() != nil {
		t.Error("empty round-trip recorder must have no segments")
	}
}

// TestRoundTripSingleRound: a trajectory of exactly one observation
// (round 0 only) must round-trip with every field intact and N
// reconstructed from c_max + minority_mass.
func TestRoundTripSingleRound(t *testing.T) {
	rec := NewRecorder(100)
	rec.ObserveInitial(colorcfg.FromCounts(60, 30, 10))
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 100 {
		t.Errorf("N reconstructed as %d, want 100", back.N)
	}
	if !reflect.DeepEqual(back.Points, rec.Points) {
		t.Errorf("points differ:\n got %+v\nwant %+v", back.Points, rec.Points)
	}
	// A single-round trajectory has exactly one segment of one round.
	segs := back.Segments()
	if len(segs) != 1 || segs[0].Rounds() != 1 {
		t.Errorf("bad segments for single point: %+v", segs)
	}
}

// TestRoundTripFullRun: a full recorded run must round-trip exactly.
func TestRoundTripFullRun(t *testing.T) {
	rec := recordRun(t, 50000, 4, 5000, 9)
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != rec.N {
		t.Errorf("N = %d, want %d", back.N, rec.N)
	}
	if !reflect.DeepEqual(back.Points, rec.Points) {
		t.Error("full-run points differ after round-trip")
	}
	// Derived analyses must agree too.
	if back.Summary() != rec.Summary() {
		t.Error("summaries differ after round-trip")
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty input":   "",
		"wrong header":  "a,b,c\n1,2,3\n",
		"short header":  "round,c_max\n",
		"bad int":       "round,c_max,c_second,bias,minority_mass,support,plurality\nx,1,1,0,0,1,0\n",
		"column drift":  "round,c_max,c_second,bias,minority_mass,plurality,support\n",
		"ragged record": "round,c_max,c_second,bias,minority_mass,support,plurality\n1,2\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
