package validate

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
)

// BiasedMutant is the harness's negative control: 3-majority with its
// adoption probabilities deliberately tilted toward color 0 by Eps (and
// renormalized). An engine driven by it samples a law close to — but
// measurably different from — the true 3-majority chain, so the
// certification family must reject it. If it ever passes, the harness
// has lost its statistical power (replicates too low, tolerance too
// loose, or a wiring bug), which is itself a test failure.
type BiasedMutant struct {
	dynamics.ThreeMajority
	// Eps is the probability tilt toward color 0 (0 < Eps < 1).
	Eps float64
}

// Name implements dynamics.Rule.
func (m BiasedMutant) Name() string {
	return fmt.Sprintf("3-majority-mutant(eps=%g)", m.Eps)
}

// AdoptionProbs implements dynamics.ProbModel with the tilted law
// p'_j = (p_j + Eps·[j=0]) / (1 + Eps).
func (m BiasedMutant) AdoptionProbs(c colorcfg.Config, dst []float64) {
	if m.Eps <= 0 || m.Eps >= 1 {
		panic("validate: BiasedMutant needs 0 < Eps < 1")
	}
	m.ThreeMajority.AdoptionProbs(c, dst)
	dst[0] += m.Eps
	for j := range dst {
		dst[j] /= 1 + m.Eps
	}
}
