package validate

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plurality/internal/mc"
	"plurality/internal/rng"
)

// Regenerate the committed traces after an *intentional* sampling change:
//
//	go test ./internal/validate/ -run TestGoldenTraces -update-golden
//
// and review the diff — every changed line is a changed sample.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/ from the current engines")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

// TestGoldenTraces pins the engines' exact sampling sequences: any change
// to draw order, batching, shard layout or kernel selection shows up as a
// byte diff against the committed trace, even when the distribution is
// unchanged.
func TestGoldenTraces(t *testing.T) {
	for _, spec := range StandardGoldenSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			got := TraceBytes(spec)
			path := goldenPath(spec.Name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("trace diverged from %s — an engine's sampling changed.\n%s", path, traceDiff(want, got))
			}
		})
	}
}

// traceDiff renders the first few differing lines.
func traceDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "  line %d:\n    golden: %q\n    got:    %q\n", i+1, w, g)
			if shown++; shown >= 3 {
				b.WriteString("  ...\n")
				break
			}
		}
	}
	return b.String()
}

// TestGoldenSpecsUnique guards the spec list itself: duplicate names
// would silently overwrite each other's files.
func TestGoldenSpecsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range StandardGoldenSpecs() {
		if seen[spec.Name] {
			t.Errorf("duplicate golden spec name %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.Rounds < 1 || spec.Initial.N() == 0 {
			t.Errorf("degenerate golden spec %q", spec.Name)
		}
	}
}

// TestGoldenBytesIndependentOfPoolWorkers renders the full golden suite
// through Monte-Carlo pools of different widths and requires bit-for-bit
// identical output: the traces are a pure function of their specs, never
// of scheduling. (Engine-internal worker counts are fixed by each spec;
// this exercises the replicate-level parallelism the CLI and CI use.)
func TestGoldenBytesIndependentOfPoolWorkers(t *testing.T) {
	specs := StandardGoldenSpecs()
	render := func(workers int) []byte {
		pool := mc.NewPool(workers)
		defer pool.Close()
		out, err := mc.Map(ctx, pool, len(specs), 99, func(i int, _ *rng.Rand) []byte {
			return TraceBytes(specs[i])
		})
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Join(out, nil)
	}
	one := render(1)
	three := render(3)
	if !bytes.Equal(one, three) {
		t.Fatal("golden bytes differ between -workers 1 and 3")
	}
}
