package validate

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/exact"
	"plurality/internal/graph"
	"plurality/internal/mc"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

// EngineFactory builds one engine instance for a replicate. All engine
// randomness must derive from r (internal seeds via r.Uint64(), stepping
// via the same r), so a replicate is a pure function of its seed.
type EngineFactory func(initial colorcfg.Config, r *rng.Rand) engine.Engine

// ChainSpec is one cell of the certification family: an engine under a
// rule, an initial configuration, and a horizon. The engine's empirical
// T-round state distribution is compared against NewChain's exact one.
type ChainSpec struct {
	// Name identifies the cell in reports (engine/config/horizon).
	Name string
	// NewEngine builds the engine under test.
	NewEngine EngineFactory
	// NewChain builds the matching ground-truth chain.
	NewChain func(n int64, k int) *exact.Chain
	// Initial is the start configuration (defines n and k).
	Initial colorcfg.Config
	// Rounds is the horizon T (>= 1).
	Rounds int
}

// opaqueGraph hides the concrete graph type from GraphEngine's clique
// fast-path assertion, forcing the literal neighbor-sampling path.
type opaqueGraph struct{ graph.Graph }

// threeMajorityChain is the shared ground-truth constructor for the
// paper's rule.
func threeMajorityChain(n int64, k int) *exact.Chain {
	return exact.New(n, k, dynamics.ThreeMajority{})
}

// CliqueSpecs returns the standard certification cells for every clique
// engine on the 3-majority rule from the given start configuration: the
// closed-form multinomial engine, the agent-sampling engine at one and
// three workers, the graph engine on the complete graph (alias fast path
// and, via an opaque wrapper, the literal vertex-sampling path), and the
// Markov engine under the keep-own restatement checked against the
// stateful chain. All of them must realize the same exact law.
func CliqueSpecs(initial colorcfg.Config, rounds int) []ChainSpec {
	cfg := initial.Clone()
	tag := fmt.Sprintf("n=%d,k=%d,T=%d", cfg.N(), cfg.K(), rounds)
	return []ChainSpec{
		{
			Name: "clique-multinomial/3majority/" + tag,
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			},
			NewChain: threeMajorityChain,
			Initial:  cfg, Rounds: rounds,
		},
		{
			Name: "clique-sampled-w1/3majority/" + tag,
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewCliqueSampled(dynamics.ThreeMajority{}, init, 1, r.Uint64())
			},
			NewChain: threeMajorityChain,
			Initial:  cfg, Rounds: rounds,
		},
		{
			Name: "clique-sampled-w3/3majority/" + tag,
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewCliqueSampled(dynamics.ThreeMajority{}, init, 3, r.Uint64())
			},
			NewChain: threeMajorityChain,
			Initial:  cfg, Rounds: rounds,
		},
		{
			Name: "graph-complete/3majority/" + tag,
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewGraphEngine(dynamics.ThreeMajority{},
					graph.NewComplete(init.N()), init, 1, r.Uint64(), nil)
			},
			NewChain: threeMajorityChain,
			Initial:  cfg, Rounds: rounds,
		},
		{
			Name: "graph-complete-literal/3majority/" + tag,
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewGraphEngine(dynamics.ThreeMajority{},
					opaqueGraph{graph.NewComplete(init.N())}, init, 1, r.Uint64(), nil)
			},
			NewChain: threeMajorityChain,
			Initial:  cfg, Rounds: rounds,
		},
		{
			Name: "clique-markov/3majority-keepown/" + tag,
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewCliqueMarkov(dynamics.ThreeMajorityKeepOwn{}, init)
			},
			NewChain: func(n int64, k int) *exact.Chain {
				return exact.NewStateful(n, k, dynamics.ThreeMajorityKeepOwn{})
			},
			Initial: cfg, Rounds: rounds,
		},
	}
}

// RuleSpec returns a certification cell for an anonymous ProbModel rule
// on the exact multinomial engine — used to cross-check the closed-form
// adoption probabilities of the other rules (median, polling, 2-choices)
// through the same machinery.
func RuleSpec(rule dynamics.Rule, initial colorcfg.Config, rounds int) ChainSpec {
	model, ok := rule.(dynamics.ProbModel)
	if !ok {
		panic(fmt.Sprintf("validate: rule %q has no ProbModel", rule.Name()))
	}
	cfg := initial.Clone()
	return ChainSpec{
		Name: fmt.Sprintf("clique-sampled-w1/%s/n=%d,k=%d,T=%d", rule.Name(), cfg.N(), cfg.K(), rounds),
		NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
			return engine.NewCliqueSampled(rule, init, 1, r.Uint64())
		},
		NewChain: func(n int64, k int) *exact.Chain { return exact.New(n, k, model) },
		Initial:  cfg, Rounds: rounds,
	}
}

// MarkovSpec returns a certification cell for a stateful rule on the
// CliqueMarkov engine against the stateful exact chain.
func MarkovSpec[R interface {
	dynamics.StatefulRule
	dynamics.TransitionModel
}](rule R, initial colorcfg.Config, rounds int) ChainSpec {
	cfg := initial.Clone()
	return ChainSpec{
		Name: fmt.Sprintf("clique-markov/%s/n=%d,k=%d,T=%d", rule.Name(), cfg.N(), cfg.K(), rounds),
		NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
			return engine.NewCliqueMarkov(rule, init)
		},
		NewChain: func(n int64, k int) *exact.Chain { return exact.NewStateful(n, k, rule) },
		Initial:  cfg, Rounds: rounds,
	}
}

// NegativeControlSpec returns the harness's self-test cell: a
// deliberately mis-sampling engine (BiasedMutant with the given tilt)
// checked against the clean 3-majority chain. CertifyChainFamily MUST
// fail this cell — a harness that certifies the mutant has no power.
func NegativeControlSpec(eps float64, initial colorcfg.Config, rounds int) ChainSpec {
	cfg := initial.Clone()
	return ChainSpec{
		Name: fmt.Sprintf("negative-control/mutant-eps=%g/n=%d,k=%d,T=%d", eps, cfg.N(), cfg.K(), rounds),
		NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
			return engine.NewCliqueMultinomial(BiasedMutant{Eps: eps}, init)
		},
		NewChain: threeMajorityChain,
		Initial:  cfg, Rounds: rounds,
	}
}

// CertifyChainFamily runs every spec's chi-square and KS checks with a
// Bonferroni correction across the whole family (two tests per spec), so
// the probability that a fully correct engine set produces any failure
// is at most opts.FamilyAlpha. Results come back in spec order,
// chi-square before KS for each spec.
func CertifyChainFamily(specs []ChainSpec, opts Options) []CheckResult {
	opts = opts.withDefaults()
	alphaPer := opts.FamilyAlpha / float64(2*len(specs))
	out := make([]CheckResult, 0, 2*len(specs))
	for i, spec := range specs {
		chi, ks := certifyChain(spec, alphaPer, opts.Seed+uint64(i), opts)
		out = append(out, chi, ks)
	}
	return out
}

// certifyChain executes one cell: R replicate runs of the engine for T
// rounds, tallied over the exact chain's state space and tested against
// e_start·Pᵀ by chi-square (joint distribution) and KS (c₀ marginal).
func certifyChain(spec ChainSpec, alpha float64, seed uint64, opts Options) (chi, ks CheckResult) {
	chain := spec.NewChain(spec.Initial.N(), spec.Initial.K())
	exactDist := chain.DistributionAfter(spec.Initial, spec.Rounds)

	states, err := mc.Map(ctx, opts.Pool, opts.Replicates, seed, func(_ int, r *rng.Rand) int {
		e := spec.NewEngine(spec.Initial, r)
		defer e.Close()
		for t := 0; t < spec.Rounds; t++ {
			e.Step(r)
		}
		return chain.IndexOf(e.Config())
	})
	if err != nil {
		panic("validate: replicate map failed: " + err.Error())
	}

	obs := make([]float64, chain.States())
	for _, s := range states {
		obs[s]++
	}
	exp := make([]float64, chain.States())
	for i, p := range exactDist {
		exp[i] = p * float64(opts.Replicates)
	}

	stat, df := stats.ChiSquareGOF(obs, exp)
	chi = CheckResult{
		Name:       spec.Name,
		Kind:       "chain-chi2",
		Stat:       stat,
		DF:         df,
		Alpha:      alpha,
		TV:         stats.TotalVariation(obs, exp),
		Replicates: opts.Replicates,
		Seed:       seed,
	}
	if df < 1 {
		chi.Pass = false
		chi.Detail = "degenerate comparison: too few usable bins"
	} else {
		chi.Critical = stats.ChiSquareCritical(df, alpha)
		chi.MinDetectableTV = minDetectableTV(chi.Critical, opts.Replicates)
		chi.Pass = stat <= chi.Critical
		if !chi.Pass {
			chi.Detail = fmt.Sprintf("engine law deviates from exact chain (df=%d, TV=%.4f)", df, chi.TV)
		}
	}

	// KS on the c₀ marginal: the observed histogram of the color-0 count
	// against the marginal implied by the exact state distribution
	// (discrete statistic; the critical value is conservative here).
	pmf0 := make([]float64, spec.Initial.N()+1)
	obs0 := make([]float64, spec.Initial.N()+1)
	for i, p := range exactDist {
		pmf0[chain.State(i)[0]] += p
	}
	for _, s := range states {
		obs0[chain.State(s)[0]]++
	}
	d := stats.KSDiscrete(obs0, pmf0)
	ks = CheckResult{
		Name:       spec.Name,
		Kind:       "chain-ks",
		Stat:       d,
		Critical:   stats.KSCriticalValue(opts.Replicates, alpha),
		Alpha:      alpha,
		Replicates: opts.Replicates,
		Seed:       seed,
	}
	ks.Pass = d <= ks.Critical
	if !ks.Pass {
		ks.Detail = fmt.Sprintf("c0-marginal CDF deviates: D=%.4f", d)
	}
	return chi, ks
}
