// Package validate is the statistical cross-validation harness that
// certifies the fast simulation engines against the repository's two
// ground-truth models:
//
//   - the exact configuration Markov chain (internal/exact): an engine's
//     empirical T-round state distribution is chi-square- and KS-tested
//     against e_start·Pᵀ, with Bonferroni-controlled family-wise error
//     across the engine × config × horizon family (CertifyChainFamily);
//   - the mean-field recursion (internal/meanfield): large-n trajectories
//     must track the ODE limit within explicit tolerance bands
//     (CheckMeanField).
//
// On top of the distributional certification the harness asserts
// paper-level properties (CheckConsensusWHP, CheckBiasMonotonicity,
// CheckMDScaling): consensus lands on the plurality color w.h.p. under
// sufficient initial bias, success probability is monotone in the bias,
// and undecided-state convergence times scale with the monochromatic
// distance.
//
// Every check is deterministic for a fixed seed (replicate seeds are
// pre-derived via internal/mc, so results are independent of worker
// count), reports explicit power accounting (MinDetectableTV: the
// total-variation deviation the chi-square test would reliably flag at
// the chosen replicate budget), and is exercised against a deliberately
// mis-sampling engine (BiasedMutant) as a negative control — a harness
// that cannot fail a broken engine certifies nothing.
//
// Golden-trace regression (golden.go) complements the statistical tier:
// canonical seeded runs are committed under testdata/golden/ and any
// engine change that alters sampling order or distribution — even one
// too subtle for the statistical tests — fails the byte comparison.
//
// The cmd/validate CLI runs the same families as a grid and emits a
// JSONL report; CI runs the quick tier on every PR and the full tier on
// a schedule (DESIGN.md §7).
package validate

import (
	"context"
	"fmt"
	"math"

	"plurality/internal/mc"
)

// CheckResult is the outcome of one statistical check. cmd/validate
// serializes it (plus control/tier tags) as one line of the JSONL
// validation report.
type CheckResult struct {
	// Name identifies the check: kind/engine/config/horizon.
	Name string `json:"name"`
	// Kind is the check family: chain-chi2, chain-ks, meanfield, property.
	Kind string `json:"kind"`
	// Stat is the test statistic (χ², KS D, max deviation, or margin).
	Stat float64 `json:"stat"`
	// Critical is the rejection threshold for Stat: the check passes
	// while Stat <= Critical.
	Critical float64 `json:"critical"`
	// DF is the chi-square degrees of freedom (chain-chi2 only).
	DF int `json:"df,omitempty"`
	// Alpha is the per-test significance level after the Bonferroni
	// correction (FamilyAlpha / family size).
	Alpha float64 `json:"alpha,omitempty"`
	// TV is the empirical total-variation distance between the engine's
	// state histogram and the exact distribution (chain checks only).
	TV float64 `json:"tv,omitempty"`
	// MinDetectableTV is the power accounting: a true sampling deviation
	// of at least this TV magnitude would be expected to fail the
	// chi-square check at the configured replicate budget.
	MinDetectableTV float64 `json:"min_detectable_tv,omitempty"`
	// Replicates is the number of independent engine runs consumed.
	Replicates int `json:"replicates,omitempty"`
	// Seed is the base seed the check derived its replicate seeds from.
	Seed uint64 `json:"seed"`
	// Pass reports whether the check passed.
	Pass bool `json:"pass"`
	// Detail carries a human-readable diagnosis on failure (or context).
	Detail string `json:"detail,omitempty"`
}

// String renders a one-line report entry.
func (r CheckResult) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	s := fmt.Sprintf("%s %-10s %-52s stat=%.4g crit=%.4g", status, r.Kind, r.Name, r.Stat, r.Critical)
	if r.TV > 0 {
		s += fmt.Sprintf(" tv=%.4f", r.TV)
	}
	if r.Detail != "" && !r.Pass {
		s += "  // " + r.Detail
	}
	return s
}

// Options tunes a family run.
type Options struct {
	// Pool executes replicate fan-out; nil uses the process-shared pool
	// at default parallelism. Results are independent of the pool's
	// worker count (replicate seeds are pre-derived).
	Pool *mc.Pool
	// Replicates is the number of independent engine runs per chain
	// check (default 4000).
	Replicates int
	// FamilyAlpha is the family-wise error rate across all chain checks
	// in one CertifyChainFamily call (default 1e-3); each individual
	// test runs at FamilyAlpha / family-size (Bonferroni).
	FamilyAlpha float64
	// Seed is the base seed; check i of a family derives its replicate
	// seeds from Seed+i. Fixed seeds make every verdict deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Pool == nil {
		o.Pool = mc.Shared(0)
	}
	if o.Replicates <= 0 {
		o.Replicates = 4000
	}
	if o.FamilyAlpha <= 0 {
		o.FamilyAlpha = 1e-3
	}
	return o
}

// AllPass reports whether every result passed.
func AllPass(results []CheckResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}

// minDetectableTV estimates the total-variation deviation that the
// chi-square test would reliably detect with R replicates: a deviation
// of TV ε spread over the occupied bins has noncentrality ≈ 4Rε²
// (Σ Δp²/p with |Δp_b| ~ 2ε/b and p_b ~ 1/b), and detection needs the
// noncentrality to reach the critical value — solve for ε. A coarse but
// honest power figure; it is reported, never used as a gate.
func minDetectableTV(crit float64, reps int) float64 {
	if reps <= 0 {
		return 0
	}
	return math.Sqrt(crit / (4 * float64(reps)))
}

// ctx is the package-wide context for pool dispatch: validation checks
// are not cancellable mid-check (they are short); cmd/validate handles
// interrupts between checks.
var ctx = context.Background()
