package validate

import (
	"bytes"
	"os"
	"testing"

	"plurality/internal/obs"
)

// TestGoldenTracesObserved certifies the telemetry half of the
// zero-cost-when-off contract (DESIGN.md §13): attaching an observer to
// every engine leaves all 13 committed golden traces byte-identical,
// i.e. the observer consumed zero rng and perturbed nothing. It also
// checks the observer actually fired once per round — a regression that
// silently detached it would otherwise pass vacuously.
func TestGoldenTracesObserved(t *testing.T) {
	specs := StandardGoldenSpecs()
	if len(specs) != 13 {
		t.Fatalf("golden suite has %d specs, the observed-identity certification expects 13 — update this test alongside the suite", len(specs))
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			rec := &obs.Recorder{MemEvery: -1}
			got := TraceBytesObserved(spec, rec)
			if plain := TraceBytes(spec); !bytes.Equal(got, plain) {
				t.Errorf("observed trace diverged from unobserved run — the observer perturbed the sampling sequence.\n%s", traceDiff(plain, got))
			}
			want, err := os.ReadFile(goldenPath(spec.Name))
			if err != nil {
				t.Fatalf("missing golden trace: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("observed trace diverged from committed golden.\n%s", traceDiff(want, got))
			}
			if rec.Total() != spec.Rounds {
				t.Errorf("observer saw %d rounds, want %d", rec.Total(), spec.Rounds)
			}
			// The recorder's view must agree with the engine's: the last
			// observed round's counts sum to the colored population of the
			// final trace line.
			last := rec.At(rec.Len() - 1)
			if last.Round != spec.Rounds {
				t.Errorf("last observed round = %d, want %d", last.Round, spec.Rounds)
			}
			if last.CMax <= 0 || last.CMax > spec.Initial.N() {
				t.Errorf("implausible observed c_max %d (n=%d)", last.CMax, spec.Initial.N())
			}
		})
	}
}
