package validate

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// GraphContractSpec is one topology-contract certification: a registry
// spec resolved through internal/topo, exercised end to end against the
// invariants the CSR port must preserve.
type GraphContractSpec struct {
	// Spec is the topo registry spec ("smallworld:6:0.1", ...).
	Spec string
	// N is the vertex count.
	N int64
	// K and Bias shape the initial configuration Biased(N, K, Bias).
	K    int
	Bias int64
	// Rounds is the number of synchronous 3-majority rounds executed.
	Rounds int
	// Workers is the CSR engine's shard count.
	Workers int
	// Seed drives both the generator and the run.
	Seed uint64
	// Sampler selects the engine's rng draw discipline; the zero value is
	// the default per-draw contract. Batch-sampler specs certify that the
	// relaxed discipline is also representation-independent: every backend
	// resolves draw i of vertex v to the same neighbor.
	Sampler engine.Sampler
}

// StandardGraphSpecs covers every family the topo registry added beyond
// the legacy set, at sizes the quick tier afford.
func StandardGraphSpecs() []GraphContractSpec {
	mk := func(spec string, n int64) GraphContractSpec {
		return GraphContractSpec{Spec: spec, N: n, K: 3, Bias: n / 6, Rounds: 8, Workers: 2, Seed: 7101}
	}
	mkBatch := func(spec string, n int64) GraphContractSpec {
		s := mk(spec, n)
		s.Sampler = engine.SamplerBatch
		return s
	}
	return []GraphContractSpec{
		mk("smallworld:6:0.1", 600),
		mk("ba:3", 600),
		mk("sbm:3:0.05:0.005", 600),
		mk("hypercube", 512),
		mk("torus:3", 512), // 8×8×8
		mk("barbell:4", 600),
		mk("regular:8", 600),
		mk("gnp:0.02", 600),
		// Batch-sampler certification over the three structural classes the
		// relaxed discipline dispatches on: a flat uniform-degree family
		// (regular), an implicit uniform-degree family (torus), and a
		// skewed-degree family (ba) that exercises the per-vertex paths.
		mkBatch("regular:8", 600),
		mkBatch("torus:3", 512),
		mkBatch("ba:3", 600),
	}
}

// CheckGraphContract certifies one topology spec: the registry resolves
// and rebuilds it reproducibly (byte-identical CSR per seed), the built
// structure satisfies the handshake invariant, and every backend of the
// same (spec, n, seed) — the family default, the opaque interface path,
// the forced in-RAM CSR, the implicit functional graph where the family
// has one, and the mmap-backed CSR round-tripped through a real file —
// yields byte-identical per-round configurations AND per-vertex colors
// (the representation-independence contract: every backend consumes one
// Int63n(degree) per sample). Conservation (Σc = n) is checked every
// round.
func CheckGraphContract(spec GraphContractSpec, opts Options) CheckResult {
	opts = opts.withDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = spec.Seed
	}
	name := fmt.Sprintf("graph-contract/%s/n=%d/w=%d", spec.Spec, spec.N, spec.Workers)
	if spec.Sampler != engine.SamplerDefault {
		name += "/sampler=" + spec.Sampler.String()
	}
	res := CheckResult{
		Name: name,
		Kind: "graph-contract",
		Seed: seed,
		Pass: true,
	}
	fail := func(format string, args ...any) CheckResult {
		res.Pass = false
		res.Detail = fmt.Sprintf(format, args...)
		return res
	}

	g, err := topo.Build(spec.Spec, spec.N, rng.New(seed))
	if err != nil {
		return fail("build: %v", err)
	}
	if g.N() != spec.N {
		return fail("built %d vertices, want %d", g.N(), spec.N)
	}
	csr, isCSR := g.(*topo.CSR)
	if isCSR {
		// Generator determinism: the registry must reproduce the graph
		// byte for byte from the same seed.
		g2, err := topo.Build(spec.Spec, spec.N, rng.New(seed))
		if err != nil {
			return fail("rebuild: %v", err)
		}
		csr2 := g2.(*topo.CSR)
		if !slices.Equal(csr.Offsets, csr2.Offsets) || !slices.Equal(csr.Neighbors, csr2.Neighbors) {
			return fail("generator not byte-deterministic for seed %d", seed)
		}
		// Handshake: every undirected edge contributes exactly two
		// adjacency entries.
		var degreeSum int64
		for v := int64(0); v < csr.N(); v++ {
			degreeSum += csr.Degree(v)
		}
		if degreeSum != int64(len(csr.Neighbors)) || degreeSum != 2*csr.Edges() {
			return fail("handshake violated: Σdeg=%d, entries=%d", degreeSum, len(csr.Neighbors))
		}
	}

	// Assemble every backend of the same (spec, n, seed). Each BuildSource
	// gets a fresh rng.New(seed), so random families rebuild the identical
	// structure per backend; implicit families ignore the rng entirely.
	canon, err := topo.Canonical(spec.Spec, spec.N)
	if err != nil {
		return fail("canonical: %v", err)
	}
	type backend struct {
		name string
		src  topo.NeighborSource
	}
	backends := []backend{{"auto", g}, {"opaque", opaqueGraph{g}}}
	csrSrc, err := topo.BuildSource(spec.Spec, spec.N, rng.New(seed), topo.BuildOpts{Mode: topo.ModeCSR})
	if err != nil {
		return fail("csr backend: %v", err)
	}
	backends = append(backends, backend{"csr", csrSrc})
	if implicit, _ := topo.IsImplicit(spec.Spec); implicit {
		impSrc, err := topo.BuildSource(spec.Spec, spec.N, nil, topo.BuildOpts{Mode: topo.ModeImplicit})
		if err != nil {
			return fail("implicit backend: %v", err)
		}
		backends = append(backends, backend{"implicit", impSrc})
	}
	if dir, err := os.MkdirTemp("", "validate-mmap-*"); err == nil {
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, topo.CacheFileName(canon, spec.N, seed))
		mmapSrc, err := topo.BuildSource(spec.Spec, spec.N, rng.New(seed), topo.BuildOpts{Mode: topo.ModeMmap, Path: path})
		if err != nil {
			return fail("mmap backend: %v", err)
		}
		if c, ok := mmapSrc.(io.Closer); ok {
			defer c.Close()
		}
		backends = append(backends, backend{"mmap", mmapSrc})
	}

	init := colorcfg.Biased(spec.N, spec.K, spec.Bias)
	engines := make([]*engine.GraphEngine, len(backends))
	for i, b := range backends {
		engines[i] = engine.NewGraphEngineOpts(dynamics.ThreeMajority{}, b.src, init, spec.Workers,
			seed^0x9e3779b9, rng.New(seed+1), engine.GraphOpts{Sampler: spec.Sampler})
		defer engines[i].Close()
	}
	for round := 1; round <= spec.Rounds; round++ {
		for _, e := range engines {
			e.Step(nil)
		}
		ref := engines[0].Config()
		if err := ref.Validate(spec.N); err != nil {
			return fail("round %d: conservation violated: %v", round, err)
		}
		for i := 1; i < len(engines); i++ {
			if c := engines[i].Config(); !ref.Equal(c) {
				return fail("round %d: %s backend diverged from %s: %v vs %v",
					round, backends[i].name, backends[0].name, c, ref)
			}
			if !slices.Equal(engines[0].Colors(), engines[i].Colors()) {
				return fail("round %d: %s backend per-vertex colors diverged from %s",
					round, backends[i].name, backends[0].name)
			}
		}
	}
	res.Replicates = spec.Rounds
	return res
}

// CertifyGraphContracts runs CheckGraphContract over a family of specs.
func CertifyGraphContracts(specs []GraphContractSpec, opts Options) []CheckResult {
	out := make([]CheckResult, 0, len(specs))
	for i, spec := range specs {
		o := opts
		if o.Seed != 0 {
			o.Seed = opts.Seed + uint64(i)*101
		}
		out = append(out, CheckGraphContract(spec, o))
	}
	return out
}
