package validate

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/mc"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

// Paper-level property checks: beyond matching the exact chain round for
// round, the engines must reproduce the paper's qualitative theorems at
// simulation scale. These are Monte-Carlo assertions with explicit
// statistical slack (Wilson intervals), deterministic for a fixed seed.

// ConsensusWHPSpec asserts Theorem 1's success event: from a
// sufficiently biased start (Corollary 1 shape), 3-majority reaches
// consensus on the initial plurality color with high probability.
type ConsensusWHPSpec struct {
	N          int64
	K          int
	Replicates int
	MaxRounds  int
	// MinRate is the required Wilson lower bound (z=3.09, α≈1e-3) on the
	// success probability.
	MinRate float64
}

// DefaultConsensusWHPSpec returns the standard cell: n=20000, k=8,
// Corollary-1 bias, 120 replicates, lower bound 0.9. (The replicate
// budget matters: even a perfect 80/80 record has Wilson lower bound
// 0.893 at z=3.09 — 120 replicates make a clean record certify 0.926.)
func DefaultConsensusWHPSpec() ConsensusWHPSpec {
	return ConsensusWHPSpec{N: 20_000, K: 8, Replicates: 120, MaxRounds: 20_000, MinRate: 0.9}
}

// CheckConsensusWHP runs the spec on the exact multinomial engine.
// Stat is the Wilson lower bound of the success rate; Critical is
// MinRate (pass when Stat >= Critical — note the inverted direction,
// encoded by swapping into margin form: Stat-Critical must be >= 0; the
// reported Stat is the margin so Pass == Stat >= 0 with Critical 0).
func CheckConsensusWHP(spec ConsensusWHPSpec, opts Options) CheckResult {
	opts = opts.withDefaults()
	s := core.Corollary1Bias(spec.N, spec.K, 1.0)
	init := colorcfg.Biased(spec.N, spec.K, s)
	wins := runSuccesses(init, spec.Replicates, spec.MaxRounds, opts)
	lo, _ := stats.WilsonInterval(wins, spec.Replicates, 3.09)
	res := CheckResult{
		Name:       fmt.Sprintf("property/consensus-whp/n=%d,k=%d,s=%d", spec.N, spec.K, s),
		Kind:       "property",
		Stat:       lo - spec.MinRate,
		Critical:   0,
		Replicates: spec.Replicates,
		Seed:       opts.Seed,
	}
	res.Pass = res.Stat >= 0
	if !res.Pass {
		res.Detail = fmt.Sprintf("success rate %d/%d (Wilson lo %.3f) below required %.3f",
			wins, spec.Replicates, lo, spec.MinRate)
	}
	return res
}

// BiasMonotonicitySpec asserts that the probability of winning on the
// plurality color is non-decreasing in the initial bias s — the
// qualitative content of Lemma 3 vs Lemma 10 (large bias amplifies,
// tiny bias is a near-lottery).
type BiasMonotonicitySpec struct {
	N          int64
	K          int
	BiasGrid   []int64
	Replicates int
	MaxRounds  int
}

// DefaultBiasMonotonicitySpec spans near-balanced to safely-biased.
func DefaultBiasMonotonicitySpec() BiasMonotonicitySpec {
	return BiasMonotonicitySpec{
		N: 4000, K: 3,
		BiasGrid:   []int64{0, 120, 400, 1200},
		Replicates: 150,
		MaxRounds:  50_000,
	}
}

// CheckBiasMonotonicity estimates the success probability at every grid
// point and fails if any consecutive pair demonstrates a statistically
// certain decrease: Wilson hi at the larger bias below Wilson lo at the
// smaller one. Stat is the minimum margin hi(s_{i+1}) − lo(s_i); the
// check passes when it is non-negative.
func CheckBiasMonotonicity(spec BiasMonotonicitySpec, opts Options) CheckResult {
	opts = opts.withDefaults()
	rates := make([]float64, len(spec.BiasGrid))
	los := make([]float64, len(spec.BiasGrid))
	his := make([]float64, len(spec.BiasGrid))
	for i, s := range spec.BiasGrid {
		init := colorcfg.Biased(spec.N, spec.K, s)
		wins := runSuccesses(init, spec.Replicates, spec.MaxRounds, Options{
			Pool: opts.Pool, Seed: opts.Seed + uint64(i)*1000, Replicates: opts.Replicates,
			FamilyAlpha: opts.FamilyAlpha,
		})
		rates[i] = float64(wins) / float64(spec.Replicates)
		los[i], his[i] = stats.WilsonInterval(wins, spec.Replicates, 3.09)
	}
	margin := math.Inf(1)
	worst := 0
	for i := 0; i+1 < len(spec.BiasGrid); i++ {
		if m := his[i+1] - los[i]; m < margin {
			margin, worst = m, i
		}
	}
	res := CheckResult{
		Name:       fmt.Sprintf("property/bias-monotonicity/n=%d,k=%d", spec.N, spec.K),
		Kind:       "property",
		Stat:       margin,
		Critical:   0,
		Replicates: spec.Replicates * len(spec.BiasGrid),
		Seed:       opts.Seed,
		Detail:     fmt.Sprintf("rates %v over bias grid %v", rates, spec.BiasGrid),
	}
	res.Pass = margin >= 0
	if !res.Pass {
		res.Detail = fmt.Sprintf("success rate drops from s=%d (lo %.3f) to s=%d (hi %.3f); rates %v",
			spec.BiasGrid[worst], los[worst], spec.BiasGrid[worst+1], his[worst+1], rates)
	}
	return res
}

// MDScalingSpec asserts the monochromatic-distance time bound of the
// undecided-state dynamics (SODA'15 follow-up, reproduced in E11):
// convergence time is Θ(md(c)·log n), so for fixed n the mean rounds to
// consensus must grow essentially linearly with md(c) ≈ k across
// near-balanced starts.
type MDScalingSpec struct {
	N          int64
	Ks         []int
	Replicates int
	MaxRounds  int
	// MinR2 is the required goodness of the linear fit of mean rounds
	// against md(c) (default 0.9), and the slope must be positive.
	MinR2 float64
}

// DefaultMDScalingSpec spans md ≈ 2 … 24.
func DefaultMDScalingSpec() MDScalingSpec {
	return MDScalingSpec{N: 50_000, Ks: []int{2, 6, 12, 24}, Replicates: 24, MaxRounds: 100_000, MinR2: 0.9}
}

// CheckMDScaling runs the undecided-state engine from slightly-biased
// k-color starts and fits mean consensus rounds against md(c). Stat is
// the fit R² (with a positive-slope requirement); Critical is MinR2.
func CheckMDScaling(spec MDScalingSpec, opts Options) CheckResult {
	opts = opts.withDefaults()
	if spec.MinR2 <= 0 {
		spec.MinR2 = 0.9
	}
	mds := make([]float64, len(spec.Ks))
	meanRounds := make([]float64, len(spec.Ks))
	for i, k := range spec.Ks {
		// Slight bias so the winner is typically the plurality color; md
		// stays ≈ k.
		init := colorcfg.Biased(spec.N, k, spec.N/int64(10*k))
		mds[i] = init.MonochromaticDistance()
		rounds, err := mc.Map(ctx, opts.Pool, spec.Replicates, opts.Seed+uint64(i)*7777,
			func(_ int, r *rng.Rand) float64 {
				e := engine.NewUndecidedExact(init)
				defer e.Close()
				res := core.Run(e, core.Options{
					MaxRounds: spec.MaxRounds,
					Stop:      core.WhenConsensusOf(spec.N),
					Rand:      r,
				})
				return float64(res.Rounds)
			})
		if err != nil {
			panic("validate: replicate map failed: " + err.Error())
		}
		meanRounds[i] = stats.Mean(rounds)
	}
	fit := stats.LinearFit(mds, meanRounds)
	res := CheckResult{
		Name:       fmt.Sprintf("property/md-scaling/undecided/n=%d", spec.N),
		Kind:       "property",
		Stat:       fit.R2,
		Critical:   spec.MinR2,
		Replicates: spec.Replicates * len(spec.Ks),
		Seed:       opts.Seed,
		Detail:     fmt.Sprintf("md %v -> mean rounds %v (slope %.2f)", mds, meanRounds, fit.Slope),
	}
	res.Pass = fit.R2 >= spec.MinR2 && fit.Slope > 0
	if !res.Pass {
		res.Detail = fmt.Sprintf("rounds do not scale with md: R²=%.3f slope=%.2f (md %v, rounds %v)",
			fit.R2, fit.Slope, mds, meanRounds)
	}
	return res
}

// runSuccesses counts WonInitialPlurality over replicates of 3-majority
// on the exact multinomial engine from init.
func runSuccesses(init colorcfg.Config, replicates, maxRounds int, opts Options) int {
	opts = opts.withDefaults()
	outcomes, err := mc.Map(ctx, opts.Pool, replicates, opts.Seed, func(_ int, r *rng.Rand) bool {
		e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
		defer e.Close()
		res := core.Run(e, core.Options{
			MaxRounds: maxRounds,
			Stop:      core.WhenConsensusOf(init.N()),
			Rand:      r,
		})
		return res.WonInitialPlurality
	})
	if err != nil {
		panic("validate: replicate map failed: " + err.Error())
	}
	wins := 0
	for _, w := range outcomes {
		if w {
			wins++
		}
	}
	return wins
}
