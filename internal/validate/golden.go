package validate

import (
	"bytes"
	"embed"
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/graph"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// goldenFS embeds the committed traces so consumers outside the package
// directory (cmd/validate) can verify them from any working directory.
//
//go:embed testdata/golden
var goldenFS embed.FS

// GoldenBytes returns the committed golden trace for a spec name (as of
// build time; the test suite's -update-golden flag rewrites the source
// files, which are re-embedded on the next build).
func GoldenBytes(name string) ([]byte, error) {
	return goldenFS.ReadFile("testdata/golden/" + name + ".golden")
}

// GoldenSpec is one canonical seeded run whose full per-round count
// trajectory is committed under testdata/golden/. The statistical tier
// catches distributional drift; goldens catch *any* change to the
// sampling sequence — a reordered draw, a different batch size on a
// changed code path, an off-by-one in a worker shard — even when the
// new law is statistically identical. Engine worker counts are part of
// the spec (never derived from the host), so the bytes are reproducible
// on any machine and independent of test parallelism.
type GoldenSpec struct {
	// Name is the trace identity; the file is testdata/golden/<Name>.golden.
	Name string
	// NewEngine builds the engine; all randomness derives from r.
	NewEngine EngineFactory
	// Initial is the start configuration.
	Initial colorcfg.Config
	// Rounds is the number of recorded rounds (plus round 0).
	Rounds int
	// Seed drives the run.
	Seed uint64
}

// StandardGoldenSpecs covers every engine family and the rule zoo's
// representative members: the closed-form multinomial engine, the
// agent-sampling engine at one and two workers, the graph engine on the
// clique fast path / literal path / a random-regular topology, the
// Markov engine, and the undecided-state engines.
func StandardGoldenSpecs() []GoldenSpec {
	return []GoldenSpec{
		{
			Name: "multinomial-3majority-n120-k4",
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			},
			Initial: colorcfg.Biased(120, 4, 24), Rounds: 25, Seed: 1001,
		},
		{
			Name: "multinomial-median-n100-k5",
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewCliqueMultinomial(dynamics.Median{}, init)
			},
			Initial: colorcfg.Biased(100, 5, 10), Rounds: 20, Seed: 1002,
		},
		{
			Name: "sampled-w1-3majority-n80-k3",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewCliqueSampled(dynamics.ThreeMajority{}, init, 1, r.Uint64())
			},
			Initial: colorcfg.Biased(80, 3, 16), Rounds: 18, Seed: 1003,
		},
		{
			Name: "sampled-w2-hplurality5-n60-k3",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewCliqueSampled(dynamics.NewHPlurality(5), init, 2, r.Uint64())
			},
			Initial: colorcfg.Biased(60, 3, 12), Rounds: 15, Seed: 1004,
		},
		{
			Name: "graph-complete-w2-3majority-n64-k3",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewGraphEngine(dynamics.ThreeMajority{},
					graph.NewComplete(init.N()), init, 2, r.Uint64(), nil)
			},
			Initial: colorcfg.Biased(64, 3, 12), Rounds: 15, Seed: 1005,
		},
		{
			Name: "graph-literal-w1-3majority-n48-k3",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewGraphEngine(dynamics.ThreeMajority{},
					opaqueGraph{graph.NewComplete(init.N())}, init, 1, r.Uint64(), nil)
			},
			Initial: colorcfg.Biased(48, 3, 9), Rounds: 12, Seed: 1006,
		},
		{
			Name: "graph-regular8-w2-3majority-n64-k4",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				layout := rng.New(r.Uint64())
				return engine.NewGraphEngine(dynamics.ThreeMajority{},
					graph.NewRandomRegular(init.N(), 8, rng.New(r.Uint64())), init, 2, r.Uint64(), layout)
			},
			Initial: colorcfg.Biased(64, 4, 16), Rounds: 15, Seed: 1007,
		},
		{
			Name: "graph-smallworld-w2-3majority-n64-k3",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				g, err := topo.Build("smallworld:6:0.2", init.N(), rng.New(r.Uint64()))
				if err != nil {
					panic(fmt.Sprintf("golden smallworld build: %v", err))
				}
				layout := rng.New(r.Uint64())
				return engine.NewGraphEngine(dynamics.ThreeMajority{}, g, init, 2, r.Uint64(), layout)
			},
			Initial: colorcfg.Biased(64, 3, 12), Rounds: 15, Seed: 1011,
		},
		{
			// The implicit-backend golden: the torus is sampled functionally
			// (topo.ModeImplicit, nothing materialized), pinning the
			// NeighborSource rng contract for the zero-memory path. The
			// backend-identity certification (CheckGraphContract) proves the
			// CSR and mmap backends reproduce these same bytes.
			Name: "graph-torus-implicit-w2-3majority-n512-k3",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				g, err := topo.BuildSource("torus:3", init.N(), nil, topo.BuildOpts{Mode: topo.ModeImplicit})
				if err != nil {
					panic(fmt.Sprintf("golden implicit torus build: %v", err))
				}
				layout := rng.New(r.Uint64())
				return engine.NewGraphEngine(dynamics.ThreeMajority{}, g, init, 2, r.Uint64(), layout)
			},
			Initial: colorcfg.Biased(512, 3, 96), Rounds: 15, Seed: 1012,
		},
		{
			// The batch-sampler golden: pins the *relaxed* draw discipline
			// (bulk block draws, no rejection sampling, draws completed per
			// block before the rule applications consume the stream). The
			// uniform-tie rule is deliberate — it draws from the same rng
			// during Apply, so any change to block sizing or draw/apply
			// interleaving moves these bytes even when the per-draw law is
			// unchanged. Degree 6 is not a power of two, so the no-rejection
			// fast draw is exercised rather than the shift identity.
			Name: "graph-regular6-w2-3majorityutie-batch-n64-k4",
			NewEngine: func(init colorcfg.Config, r *rng.Rand) engine.Engine {
				layout := rng.New(r.Uint64())
				return engine.NewGraphEngineOpts(dynamics.ThreeMajority{UniformTie: true},
					graph.NewRandomRegular(init.N(), 6, rng.New(r.Uint64())), init, 2, r.Uint64(), layout,
					engine.GraphOpts{Sampler: engine.SamplerBatch})
			},
			Initial: colorcfg.Biased(64, 4, 16), Rounds: 15, Seed: 1013,
		},
		{
			Name: "markov-2choiceskeepown-n90-k3",
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, init)
			},
			Initial: colorcfg.Biased(90, 3, 30), Rounds: 20, Seed: 1008,
		},
		{
			Name: "undecided-exact-n100-k4",
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewUndecidedExact(init)
			},
			Initial: colorcfg.Biased(100, 4, 25), Rounds: 20, Seed: 1009,
		},
		{
			Name: "undecided-population-n80-k3",
			NewEngine: func(init colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewUndecidedPopulation(init)
			},
			Initial: colorcfg.Biased(80, 3, 20), Rounds: 15, Seed: 1010,
		},
	}
}

// TraceBytes executes the spec and renders the canonical byte form:
// a header line followed by one tab-separated line per round (round 0 is
// the initial configuration) listing the color counts. The bytes are a
// pure function of the spec.
func TraceBytes(spec GoldenSpec) []byte {
	return traceBytes(spec, nil)
}

// TraceBytesObserved is TraceBytes with o attached to the engine for the
// whole run. Because observers are handed no rng (obs.Observer's
// contract), the returned bytes must equal TraceBytes(spec) for every
// spec — the certification the golden suite runs over all committed
// traces to pin the zero-cost-when-off telemetry contract.
func TraceBytesObserved(spec GoldenSpec, o obs.Observer) []byte {
	return traceBytes(spec, o)
}

func traceBytes(spec GoldenSpec, o obs.Observer) []byte {
	r := rng.New(spec.Seed)
	e := spec.NewEngine(spec.Initial.Clone(), r)
	defer e.Close()
	if o != nil {
		engine.Observe(e, o)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "# golden %s n=%d k=%d seed=%d rounds=%d\n",
		spec.Name, spec.Initial.N(), spec.Initial.K(), spec.Seed, spec.Rounds)
	writeRound := func(round int, c colorcfg.Config) {
		fmt.Fprintf(&b, "%d", round)
		for _, v := range c {
			fmt.Fprintf(&b, "\t%d", v)
		}
		b.WriteByte('\n')
	}
	writeRound(0, e.Config())
	for t := 1; t <= spec.Rounds; t++ {
		e.Step(r)
		writeRound(t, e.Config())
	}
	return b.Bytes()
}
