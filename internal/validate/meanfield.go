package validate

import (
	"fmt"
	"math"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/mc"
	"plurality/internal/meanfield"
	"plurality/internal/rng"
)

// MeanFieldSpec compares a large-n engine trajectory against the
// deterministic mean-field recursion x(t+1) = p(x(t)).
type MeanFieldSpec struct {
	// Name identifies the check in reports.
	Name string
	// Model is the closed-form map driving the ODE limit.
	Model dynamics.ProbModel
	// NewEngine builds the engine under test.
	NewEngine EngineFactory
	// Initial is the start configuration; n should be large (the
	// stochastic process stays within O(1/√n) of the recursion).
	Initial colorcfg.Config
	// Rounds is the horizon T.
	Rounds int
	// Replicates is the number of trajectories averaged (default 20).
	Replicates int
	// Tol is the tolerance band on |mean fraction − ODE| per color and
	// round. Zero derives a band from n, T and Replicates: the standard
	// error of a mean of R multinomial fractions is ≤ ½/√(nR) per round,
	// compounded linearly over the horizon plus a 1/n second-order bias
	// allowance, all with a 6σ-style slack factor.
	Tol float64
}

func (s MeanFieldSpec) withDefaults() MeanFieldSpec {
	if s.Replicates <= 0 {
		s.Replicates = 20
	}
	if s.Tol <= 0 {
		n := float64(s.Initial.N())
		T := float64(s.Rounds)
		s.Tol = 6*(T+1)*0.5/math.Sqrt(n*float64(s.Replicates)) + 10*T/n
	}
	return s
}

// StandardMeanFieldSpecs returns the default large-n cells: the exact
// multinomial engine and the agent-sampling engine, both under
// 3-majority from a biased start.
func StandardMeanFieldSpecs() []MeanFieldSpec {
	init := colorcfg.Biased(100_000, 5, 8000)
	return []MeanFieldSpec{
		{
			Name:  "meanfield/clique-multinomial/3majority/n=1e5,k=5,T=8",
			Model: dynamics.ThreeMajority{},
			NewEngine: func(in colorcfg.Config, _ *rng.Rand) engine.Engine {
				return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, in)
			},
			Initial: init,
			Rounds:  8,
		},
		{
			Name:  "meanfield/clique-sampled-w2/3majority/n=2e4,k=5,T=6",
			Model: dynamics.ThreeMajority{},
			NewEngine: func(in colorcfg.Config, r *rng.Rand) engine.Engine {
				return engine.NewCliqueSampled(dynamics.ThreeMajority{}, in, 2, r.Uint64())
			},
			Initial: colorcfg.Biased(20_000, 5, 1600),
			Rounds:  6,
		},
	}
}

// CheckMeanField runs the spec's replicates, averages the per-round
// fraction trajectories, and compares them against meanfield.Iterate
// within the tolerance band. Stat is the maximum deviation over colors
// and rounds; Critical is the band.
func CheckMeanField(spec MeanFieldSpec, opts Options) CheckResult {
	opts = opts.withDefaults()
	spec = spec.withDefaults()
	k := spec.Initial.K()

	ode := meanfield.Iterate(spec.Model, spec.Initial.Fractions(), spec.Rounds)

	trajs, err := mc.Map(ctx, opts.Pool, spec.Replicates, opts.Seed, func(_ int, r *rng.Rand) [][]float64 {
		e := spec.NewEngine(spec.Initial, r)
		defer e.Close()
		traj := make([][]float64, 0, spec.Rounds+1)
		traj = append(traj, e.Config().Fractions())
		for t := 0; t < spec.Rounds; t++ {
			e.Step(r)
			traj = append(traj, e.Config().Fractions())
		}
		return traj
	})
	if err != nil {
		panic("validate: replicate map failed: " + err.Error())
	}

	maxDev, devRound, devColor := 0.0, 0, 0
	for t := 0; t <= spec.Rounds; t++ {
		for j := 0; j < k; j++ {
			mean := 0.0
			for _, traj := range trajs {
				mean += traj[t][j]
			}
			mean /= float64(len(trajs))
			if d := math.Abs(mean - ode[t][j]); d > maxDev {
				maxDev, devRound, devColor = d, t, j
			}
		}
	}

	res := CheckResult{
		Name:       spec.Name,
		Kind:       "meanfield",
		Stat:       maxDev,
		Critical:   spec.Tol,
		Replicates: spec.Replicates,
		Seed:       opts.Seed,
		Pass:       maxDev <= spec.Tol,
	}
	if !res.Pass {
		res.Detail = fmt.Sprintf("mean trajectory leaves the ODE band at round %d color %d (|Δ|=%.5f > %.5f)",
			devRound, devColor, maxDev, spec.Tol)
	}
	return res
}
