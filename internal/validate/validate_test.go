package validate

import (
	"strings"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

// testOpts returns the deterministic option set used across the suite.
func testOpts(seed uint64) Options {
	return Options{Replicates: 4000, FamilyAlpha: 1e-3, Seed: seed}
}

// certFamily is the acceptance family: every clique engine × two start
// configurations (n ≤ 8, k ≤ 3) × two horizons, plus the anonymous rule
// zoo and the stateful comparator on their ground-truth chains.
func certFamily() []ChainSpec {
	var specs []ChainSpec
	specs = append(specs, CliqueSpecs(colorcfg.FromCounts(3, 2, 1), 1)...)
	specs = append(specs, CliqueSpecs(colorcfg.FromCounts(4, 3, 1), 3)...)
	specs = append(specs, CliqueSpecs(colorcfg.FromCounts(4, 4), 2)...)
	specs = append(specs,
		RuleSpec(dynamics.Median{}, colorcfg.FromCounts(3, 2, 2), 2),
		RuleSpec(dynamics.Polling{}, colorcfg.FromCounts(4, 2), 2),
		RuleSpec(dynamics.TwoChoices{}, colorcfg.FromCounts(3, 3, 1), 1),
		MarkovSpec(dynamics.TwoChoicesKeepOwn{}, colorcfg.FromCounts(4, 2, 2), 2),
	)
	return specs
}

// TestCertifyCliqueEngines is the acceptance gate: all clique engines
// must match the exact chain in distribution (chi-square + KS, family
// α=0.001 with Bonferroni) on every cell.
func TestCertifyCliqueEngines(t *testing.T) {
	results := CertifyChainFamily(certFamily(), testOpts(42))
	for _, r := range results {
		if r.DF != 0 && r.DF < 3 {
			t.Errorf("%s: suspiciously few degrees of freedom (%d)", r.Name, r.DF)
		}
		if !r.Pass {
			t.Errorf("certification failed: %s", r)
		}
	}
	if len(results) != 2*len(certFamily()) {
		t.Fatalf("expected 2 results per spec, got %d for %d specs", len(results), len(certFamily()))
	}
}

// TestNegativeControlFails: the harness must reject the deliberately
// mis-sampling mutant engine. A family in which the mutant passes has no
// statistical power, so this test failing means the harness — not the
// engine — is broken.
func TestNegativeControlFails(t *testing.T) {
	specs := []ChainSpec{
		NegativeControlSpec(0.15, colorcfg.FromCounts(3, 2, 1), 1),
		NegativeControlSpec(0.15, colorcfg.FromCounts(4, 3, 1), 3),
	}
	results := CertifyChainFamily(specs, testOpts(43))
	chi2Failed := false
	for _, r := range results {
		if r.Kind == "chain-chi2" && !r.Pass {
			chi2Failed = true
		}
	}
	if !chi2Failed {
		t.Fatalf("mutant engine passed every chi-square check — harness has no power: %v", results)
	}
}

// TestNegativeControlSubtle: even a small tilt must fall to the χ² test
// at the standard replicate budget once the horizon compounds it.
func TestNegativeControlSubtle(t *testing.T) {
	if testing.Short() {
		t.Skip("power check is slow")
	}
	specs := []ChainSpec{NegativeControlSpec(0.08, colorcfg.FromCounts(4, 3, 1), 3)}
	results := CertifyChainFamily(specs, Options{Replicates: 8000, FamilyAlpha: 1e-3, Seed: 44})
	if results[0].Pass {
		t.Errorf("eps=0.08 mutant passed chi-square at 8000 replicates: %s", results[0])
	}
}

// TestDeterministicVerdicts: the entire family must produce identical
// results on identical seeds — the contract that makes a CI failure
// reproducible locally.
func TestDeterministicVerdicts(t *testing.T) {
	specs := CliqueSpecs(colorcfg.FromCounts(3, 2, 1), 1)
	a := CertifyChainFamily(specs, testOpts(7))
	b := CertifyChainFamily(specs, testOpts(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identical runs:\n%v\n%v", i, a[i], b[i])
		}
	}
	// And a different seed must actually change the sampled statistics.
	c := CertifyChainFamily(specs, testOpts(8))
	same := true
	for i := range a {
		if a[i].Stat != c[i].Stat {
			same = false
		}
	}
	if same {
		t.Fatal("statistics identical across different seeds — seeding is not wired through")
	}
}

// TestPowerAccounting: every chi-square result must report its minimum
// detectable TV, and the budget must make it meaningfully small (the
// family would miss only sub-5% deviations).
func TestPowerAccounting(t *testing.T) {
	results := CertifyChainFamily(CliqueSpecs(colorcfg.FromCounts(3, 2, 1), 1), testOpts(45))
	for _, r := range results {
		if r.Kind != "chain-chi2" {
			continue
		}
		if r.MinDetectableTV <= 0 || r.MinDetectableTV > 0.2 {
			t.Errorf("%s: min detectable TV %.4f out of the credible range", r.Name, r.MinDetectableTV)
		}
		if r.Seed == 0 {
			t.Errorf("%s: seed not recorded", r.Name)
		}
	}
}

func TestMeanFieldTracking(t *testing.T) {
	if testing.Short() {
		t.Skip("mean-field replicates are slow")
	}
	for _, spec := range StandardMeanFieldSpecs() {
		res := CheckMeanField(spec, testOpts(46))
		if !res.Pass {
			t.Errorf("mean-field check failed: %s", res)
		}
		if res.Critical <= 0 {
			t.Errorf("%s: tolerance band not derived", res.Name)
		}
	}
}

// TestMeanFieldDetectsMutant: the ODE band must be tight enough to
// reject the tilted engine (whose trajectory drifts toward color 0 by
// ~eps per round — orders of magnitude outside the O(1/√n) band).
func TestMeanFieldDetectsMutant(t *testing.T) {
	if testing.Short() {
		t.Skip("mean-field replicates are slow")
	}
	spec := StandardMeanFieldSpecs()[0]
	spec.Name = "meanfield/negative-control"
	spec.NewEngine = func(in colorcfg.Config, _ *rng.Rand) engine.Engine {
		return engine.NewCliqueMultinomial(BiasedMutant{Eps: 0.05}, in)
	}
	if res := CheckMeanField(spec, testOpts(50)); res.Pass {
		t.Errorf("mutant engine stayed inside the ODE band — band too loose: %s", res)
	}
}

func TestConsensusWHP(t *testing.T) {
	if testing.Short() {
		t.Skip("property replicates are slow")
	}
	res := CheckConsensusWHP(DefaultConsensusWHPSpec(), testOpts(47))
	if !res.Pass {
		t.Errorf("consensus-w.h.p. property failed: %s", res)
	}
}

func TestBiasMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("property replicates are slow")
	}
	res := CheckBiasMonotonicity(DefaultBiasMonotonicitySpec(), testOpts(48))
	if !res.Pass {
		t.Errorf("bias-monotonicity property failed: %s", res)
	}
}

func TestMDScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("property replicates are slow")
	}
	res := CheckMDScaling(DefaultMDScalingSpec(), testOpts(49))
	if !res.Pass {
		t.Errorf("md-scaling property failed: %s", res)
	}
}

func TestCheckResultString(t *testing.T) {
	r := CheckResult{Name: "x", Kind: "chain-chi2", Stat: 1, Critical: 2, Pass: true}
	if !strings.HasPrefix(r.String(), "PASS") {
		t.Errorf("bad render: %q", r.String())
	}
	r.Pass = false
	r.Detail = "boom"
	if s := r.String(); !strings.HasPrefix(s, "FAIL") || !strings.Contains(s, "boom") {
		t.Errorf("bad render: %q", s)
	}
}
