// Bigmem smoke: proves the implicit backend's zero-materialization claim
// with a hard number — building a 10⁸-vertex torus keeps the process under
// 256 MB RSS, because nothing but the NeighborSource value exists. The CI
// bigmem-smoke job runs this with PLURALITY_BIGMEM=1; without the gate the
// test skips, since one engine round at n = 10⁸ takes minutes on small
// runners and the color arrays alone need ~800 MB.
package plurality_test

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/topo"
)

// rssBytes reads the process resident set from /proc/self/status (VmRSS,
// reported in kB). Linux-only, which is where the CI step runs.
func rssBytes(t *testing.T) int64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status on this platform: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			break
		}
		return kb << 10
	}
	t.Skip("VmRSS not found in /proc/self/status")
	return 0
}

// TestBigmemImplicitTorus builds a 10⁸-vertex implicit torus (10⁴ × 10⁴)
// and asserts RSS stays under 256 MB before any colors are allocated — a
// materialized CSR of the same graph would be 4.8 GB of adjacency alone.
// It then runs one synchronous 3-majority round to prove the engine
// actually works at this scale, under the looser budget the two color
// buffers impose (2 × 4 B × 10⁸ = 800 MB, plus worker scratch).
func TestBigmemImplicitTorus(t *testing.T) {
	if os.Getenv("PLURALITY_BIGMEM") != "1" {
		t.Skip("set PLURALITY_BIGMEM=1 to run the 10^8-vertex smoke")
	}
	const n = 100_000_000 // 10⁴ × 10⁴ torus
	src, err := topo.BuildSource("torus", n, nil, topo.BuildOpts{Mode: topo.ModeImplicit})
	if err != nil {
		t.Fatal(err)
	}
	if src.N() != n {
		t.Fatalf("source has %d vertices, want %d", src.N(), n)
	}
	const graphBudget = 256 << 20
	if rss := rssBytes(t); rss > graphBudget {
		t.Fatalf("RSS after building implicit n=10^8 torus is %d MB, budget 256 MB — the backend materialized something", rss>>20)
	}

	e := engine.NewGraphEngine(dynamics.ThreeMajority{}, src,
		colorcfg.Biased(n, 4, n/100), 4, 23, nil)
	defer e.Close()
	e.Step(nil)
	if err := e.Config().Validate(n); err != nil {
		t.Fatalf("round broke conservation: %v", err)
	}
	// Colors dominate now; 2 GB leaves headroom over the ~1 GB floor
	// while still catching any O(n·degree) regression (a materialized
	// 4-regular adjacency would add ~4.8 GB).
	const engineBudget = 2 << 30
	if rss := rssBytes(t); rss > engineBudget {
		t.Fatalf("RSS after one n=10^8 round is %d MB, budget 2048 MB", rss>>20)
	}
}
