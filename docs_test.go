// Docs checks: every relative markdown link in the repository must point
// at a file or directory that exists, so README/DESIGN/EXPERIMENTS never
// ship dangling references. CI runs this in the docs job; it also runs
// with the ordinary test suite.
package plurality_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkRE matches inline markdown links/images: [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use the
// inline form.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func TestMarkdownLinks(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, line := range strings.Split(string(raw), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				switch {
				case strings.HasPrefix(target, "http://"),
					strings.HasPrefix(target, "https://"),
					strings.HasPrefix(target, "mailto:"),
					strings.HasPrefix(target, "#"):
					continue
				}
				// Drop a #fragment; anchors are not checked.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: dangling link %q (resolved %s)", rel, m[1], resolved)
				}
				checked++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no markdown links found — the walker is broken")
	}
}
