// Topologies: the paper analyzes the clique; this extension runs the same
// 3-majority rule with local neighbor sampling across the whole topo
// registry — from expanders down to bottleneck graphs — and shows how
// expansion governs convergence: each row reports the topology's spectral
// gap (lazy-walk, estimated by internal/topo/spectral) next to its
// convergence behavior. Expanders track the clique; the torus pays a
// polynomial mixing penalty; the cycle and the barbell effectively freeze.
//
//	go run ./examples/topologies
//	go run ./examples/topologies -n 2000 -reps 2 -graphs complete,regular:8,barbell:4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
	"plurality/internal/topo"
	"plurality/internal/topo/spectral"
)

func main() {
	var (
		n      = flag.Int64("n", 10_000, "vertices (must satisfy each family's shape constraints)")
		k      = flag.Int("k", 4, "colors")
		reps   = flag.Int("reps", 5, "replicates per topology")
		limit  = flag.Int("limit", 20_000, "round cap")
		seed   = flag.Uint64("seed", 7, "base seed")
		graphs = flag.String("graphs", "complete,regular:8,smallworld:8:0.1,ba:4,gnp:0.0016,torus,sbm:2:0.0032:0.0002,barbell:8,cycle",
			"comma-separated topo registry specs ("+strings.Join(topo.FamilyUsages(), " | ")+")")
		mode = flag.String("mode", "auto", "topology backend: auto | implicit | csr | mmap (mmap caches CSR files in the OS temp dir)")
	)
	flag.Parse()
	bmode, err := topo.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topologies:", err)
		os.Exit(1)
	}
	bias := *n * 3 / 20

	fmt.Printf("3-majority with local sampling: n=%d, k=%d, bias=%d, %d reps, cap %d rounds\n\n",
		*n, *k, bias, *reps, *limit)
	fmt.Printf("%-20s %-13s %-10s %-12s %s\n", "topology", "spectral_gap", "converged", "mean rounds", "mean final c_max/n")

	for _, spec := range strings.Split(*graphs, ",") {
		spec = strings.TrimSpace(spec)
		canon, err := topo.Canonical(spec, *n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topologies: %v (adjust -n or drop the family)\n", err)
			os.Exit(1)
		}
		// One quenched graph per topology, shared across replicates; the
		// gap is a property of the structure, so it is estimated once. The
		// backend mode is invisible to the results (same rng contract).
		opts := topo.BuildOpts{Mode: bmode}
		if bmode == topo.ModeMmap {
			opts.Path = filepath.Join(os.TempDir(), topo.CacheFileName(canon, *n, *seed))
		}
		g, err := topo.BuildSource(canon, *n, rng.New(*seed), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topologies: %v\n", err)
			os.Exit(1)
		}
		gap := "-"
		if diag, err := spectral.Diagnose(g, rng.New(*seed+1), spectral.Options{}); err == nil {
			gap = fmt.Sprintf("%.2e", diag.SpectralGap)
		}
		conv := 0
		var rounds, share float64
		for rep := 0; rep < *reps; rep++ {
			r := rng.New(*seed + uint64(rep)*1000 + 11)
			e := engine.NewGraphEngine(dynamics.ThreeMajority{}, g,
				colorcfg.Biased(*n, *k, bias), 4, *seed^(uint64(rep)<<8), r)
			res := core.Run(e, core.Options{MaxRounds: *limit, Rand: r})
			e.Close()
			if res.Stopped {
				conv++
			}
			rounds += float64(res.Rounds) / float64(*reps)
			first, _ := res.Final.TopTwo()
			share += float64(first) / float64(*n) / float64(*reps)
		}
		fmt.Printf("%-20s %-13s %6d/%-3d %12.0f %17.3f\n", canon, gap, conv, *reps, rounds, share)
	}

	fmt.Println("\nreading: convergence tracks the spectral gap — expanders (regular, ba, smallworld)")
	fmt.Println("mimic the clique's O(λ log n); the torus pays its polynomial mixing penalty; the")
	fmt.Println("bottleneck families (barbell, sparse sbm) and the cycle stall at the round cap.")
}
