// Topologies: the paper analyzes the clique; this extension runs the same
// 3-majority rule with local neighbor sampling on sparser topologies and
// shows how expansion governs convergence: the clique and a random regular
// graph (an expander) behave alike, while the torus is slower and the cycle
// effectively freezes into segments.
//
//	go run ./examples/topologies
package main

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/graph"
	"plurality/internal/rng"
)

func main() {
	const (
		n     = 10_000 // 100×100 torus
		k     = 4
		bias  = 1_500
		reps  = 5
		limit = 20_000
	)
	layout := rng.New(1)
	builders := []struct {
		name string
		mk   func(r *rng.Rand) graph.Graph
	}{
		{"clique (paper)", func(r *rng.Rand) graph.Graph { return graph.NewComplete(n) }},
		{"random 8-regular", func(r *rng.Rand) graph.Graph { return graph.NewRandomRegular(n, 8, r) }},
		{"G(n, 16/n)", func(r *rng.Rand) graph.Graph { return graph.NewErdosRenyi(n, 16.0/float64(n), r) }},
		{"torus 100×100", func(r *rng.Rand) graph.Graph { return graph.NewTorus(100, 100) }},
		{"cycle", func(r *rng.Rand) graph.Graph { return graph.NewCycle(n) }},
	}

	fmt.Printf("3-majority with local sampling: n=%d, k=%d, bias=%d, %d reps, cap %d rounds\n\n",
		n, k, bias, reps, limit)
	fmt.Printf("%-18s %-12s %-12s %s\n", "topology", "converged", "mean rounds", "mean final c_max/n")

	for _, b := range builders {
		conv := 0
		var rounds, share float64
		for rep := 0; rep < reps; rep++ {
			r := rng.New(uint64(rep) + 7)
			g := b.mk(r)
			e := engine.NewGraphEngine(dynamics.ThreeMajority{}, g,
				colorcfg.Biased(n, k, bias), 4, uint64(rep)<<8, layout)
			res := core.Run(e, core.Options{MaxRounds: limit, Rand: r})
			e.Close()
			if res.Stopped {
				conv++
			}
			rounds += float64(res.Rounds) / reps
			first, _ := res.Final.TopTwo()
			share += float64(first) / float64(n) / reps
		}
		fmt.Printf("%-18s %6d/%d %14.0f %17.3f\n", b.name, conv, reps, rounds, share)
	}

	fmt.Println("\nreading: good expanders mimic the clique's O(λ log n); the torus pays a")
	fmt.Println("polynomial mixing penalty; the cycle coarsens locally and stalls at the cap.")
}
