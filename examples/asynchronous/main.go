// Asynchronous: the paper's model is synchronous (all agents update in
// lockstep); related work uses the sequential population model (one
// random pairwise interaction at a time). This example runs 3-majority
// under both schedulers — counting n sequential micro-steps as one round —
// and under the keep-own two-choices variant, showing the timescale is
// set by the dynamics' drift, not by the scheduler.
//
//	go run ./examples/asynchronous
package main

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func main() {
	const (
		n    = 50_000
		k    = 8
		reps = 10
	)
	s := core.Corollary1Bias(n, k, 1.0)
	fmt.Printf("n=%d, k=%d, bias=%d, %d reps\n\n", n, k, s, reps)
	fmt.Printf("%-34s %-12s %s\n", "scheduler / dynamics", "mean rounds", "won plurality")

	type variant struct {
		name string
		mk   func() engine.Engine
	}
	variants := []variant{
		{"synchronous 3-majority", func() engine.Engine {
			return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
		}},
		{"sequential 3-majority (n steps/rd)", func() engine.Engine {
			return engine.NewPopulation(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
		}},
		{"synchronous 2-choices-keep-own", func() engine.Engine {
			return engine.NewCliqueMarkov(dynamics.TwoChoicesKeepOwn{}, colorcfg.Biased(n, k, s))
		}},
	}

	base := rng.New(5)
	for _, v := range variants {
		var rounds float64
		wins := 0
		for rep := 0; rep < reps; rep++ {
			res := core.Run(v.mk(), core.Options{MaxRounds: 100_000, Rand: base.NewStream()})
			rounds += float64(res.Rounds) / reps
			if res.WonInitialPlurality {
				wins++
			}
		}
		fmt.Printf("%-34s %-12.1f %d/%d\n", v.name, rounds, wins, reps)
	}

	fmt.Println("\nreading: one sequential sweep of n interactions moves the configuration")
	fmt.Println("about as far as one parallel round — the drift (Lemma 1) is scheduler-blind.")
}
