// Byzantine: Corollary 4's self-stabilization claim, live. An F-bounded
// dynamic adversary moves F agents per round from the plurality color to
// its strongest rival. For F below the Lemma-3 per-round bias gain s/(4λ)
// the process still reaches and holds M-plurality consensus; cranking F
// past the gain stalls it.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"

	"plurality/internal/adversary"
	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func main() {
	const (
		n = 400_000
		k = 4
	)
	lambda := core.Lambda(n, k)
	s := core.Corollary1Bias(n, k, 1.0)
	gain := float64(s) / (4 * lambda)
	fmt.Printf("n=%d k=%d bias=%d λ=%.3g — Lemma-3 per-round gain s/4λ ≈ %.0f agents\n\n",
		n, k, s, lambda, gain)
	fmt.Printf("%-12s %-12s %-10s %-14s %s\n",
		"F", "F/(s/4λ)", "reached", "rounds", "worst minority in 200-round window")

	for _, f := range []int64{0, int64(gain / 10), int64(gain / 2), int64(2 * gain)} {
		m := int64(core.SelfStabilizationResidue(s, lambda)) + 10*f
		r := rng.New(uint64(f) + 99)
		eng := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, colorcfg.Biased(n, k, s))
		adv := adversary.Strongest{F: f}
		res := core.Run(eng, core.Options{
			MaxRounds: 2_000,
			Rand:      r,
			Adversary: adv,
			Stop:      core.WhenMPlurality(n, m),
		})
		worst := int64(-1)
		if res.Stopped {
			// Almost-stability window: the adversary keeps attacking, the
			// residue must stay bounded (Corollary 4's poly(n)-length phase,
			// sampled here for 200 rounds).
			worst = 0
			for i := 0; i < 200; i++ {
				eng.Step(r)
				adv.Corrupt(eng, r)
				first, _ := eng.Config().TopTwo()
				if mass := n - first; mass > worst {
					worst = mass
				}
			}
		}
		status := fmt.Sprintf("yes, M=%d", m)
		if !res.Stopped {
			status = "stalled"
		}
		worstStr := "-"
		if worst >= 0 {
			worstStr = fmt.Sprintf("%d agents (M=%d)", worst, m)
		}
		fmt.Printf("%-12d %-12.2f %-10s %-14d %s\n",
			f, float64(f)/gain, status, res.Rounds, worstStr)
	}
}
