// Compare: the four dynamics discussed in the paper on the same input —
// 3-majority (solves plurality), median (fast but answers the median, not
// the plurality), polling (fails with constant probability), and the
// undecided-state dynamics (fast when the monochromatic distance is small).
//
//	go run ./examples/compare
//	go run ./examples/compare -n 2000 -k 4 -reps 3   # tiny run (CI smoke)
package main

import (
	"flag"
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func main() {
	var (
		nFlag    = flag.Int64("n", 200_000, "number of agents")
		kFlag    = flag.Int("k", 32, "number of colors")
		repsFlag = flag.Int("reps", 20, "replicates per dynamics")
	)
	flag.Parse()
	n, k, reps := *nFlag, *kFlag, *repsFlag
	// Corollary-1 bias toward color 0: ample for 3-majority, irrelevant to
	// the median rule (whose fixed point is the middle of the color range)
	// and far too small to decide the polling lottery.
	s := core.Corollary1Bias(n, k, 1.0)
	mkInit := func() colorcfg.Config { return colorcfg.Biased(n, k, s) }
	init := mkInit()
	fmt.Printf("input: n=%d, k=%d, plurality=color %d, bias=%d, md(c)=%.1f\n\n",
		n, k, init.Plurality(), init.Bias(), init.MonochromaticDistance())
	fmt.Printf("%-22s %12s %14s %10s\n", "dynamics", "mean rounds", "won plurality", "winner(s)")

	type runner struct {
		name string
		mk   func() engine.Engine
	}
	runners := []runner{
		{"3-majority", func() engine.Engine {
			return engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, mkInit())
		}},
		{"median (Doerr et al.)", func() engine.Engine {
			return engine.NewCliqueMultinomial(dynamics.Median{}, mkInit())
		}},
		{"polling (voter)", func() engine.Engine {
			return engine.NewCliqueMultinomial(dynamics.Polling{}, mkInit())
		}},
		{"undecided-state", func() engine.Engine {
			return engine.NewUndecidedExact(mkInit())
		}},
	}

	base := rng.New(7)
	for _, rn := range runners {
		var totalRounds float64
		wins := 0
		winners := map[colorcfg.Color]int{}
		for rep := 0; rep < reps; rep++ {
			res := core.Run(rn.mk(), core.Options{
				MaxRounds: 500_000,
				Rand:      base.NewStream(),
				Stop:      core.WhenConsensusOf(n),
			})
			totalRounds += float64(res.Rounds)
			if res.WonInitialPlurality {
				wins++
			}
			winners[res.Winner]++
		}
		fmt.Printf("%-22s %12.1f %11d/%d    %v\n",
			rn.name, totalRounds/float64(reps), wins, reps, topWinners(winners))
	}

	fmt.Println("\nreading: median stabilizes in O(log n) but on the median color;")
	fmt.Println("polling is a lottery; 3-majority takes Θ(k·log n) and gets it right.")
}

// topWinners renders the winner histogram compactly.
func topWinners(w map[colorcfg.Color]int) string {
	out := ""
	for c, cnt := range w {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("c%d×%d", c, cnt)
	}
	return out
}
