// HPlurality: Theorem 4's message — sampling more neighbors helps only
// quadratically. From a balanced k-color start, the time for any color to
// double to 2n/k scales like k/h²; the normalized column rounds·h²/k is
// flat, so a polylog sample size can buy only a polylog speedup.
//
//	go run ./examples/hplurality
package main

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func main() {
	const (
		n    = 100_000
		k    = 32
		reps = 5
	)
	fmt.Printf("h-plurality on the clique: n=%d, k=%d, balanced start, %d reps\n\n", n, k, reps)
	fmt.Printf("%-6s %-18s %-14s %s\n", "h", "rounds to 2n/k", "rounds·h²/k", "speedup vs h=3")

	var base float64
	for _, h := range []int{3, 5, 9, 17, 33} {
		total := 0.0
		for rep := 0; rep < reps; rep++ {
			r := rng.New(uint64(h*1000 + rep))
			e := engine.NewCliqueSampled(dynamics.NewHPlurality(h), colorcfg.Balanced(n, k), 4,
				uint64(h)<<20|uint64(rep))
			target := int64(2 * n / k)
			rounds := 0
			for rounds < 100_000 {
				if first, _ := e.Config().TopTwo(); first >= target {
					break
				}
				e.Step(r)
				rounds++
			}
			e.Close()
			total += float64(rounds)
		}
		mean := total / reps
		if h == 3 {
			base = mean
		}
		fmt.Printf("%-6d %-18.1f %-14.1f %.1f×\n",
			h, mean, mean*float64(h*h)/float64(k), base/mean)
	}
	fmt.Println("\nreading: time drops ~quadratically in h (rounds·h²/k roughly flat),")
	fmt.Println("matching the Ω(k/h²) lower bound — larger samples cannot beat it.")
}
