// Exactchain: for small systems the configuration Markov chain can be
// solved exactly (no sampling). This example prints, for every 3-input
// dynamics with a closed form, the exact probability of reaching each
// color and the exact expected number of rounds from the same start —
// including the voter martingale as an analytic sanity check.
//
//	go run ./examples/exactchain
package main

import (
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/dynamics"
	"plurality/internal/exact"
)

func main() {
	n := int64(18)
	start := colorcfg.FromCounts(8, 6, 4)
	fmt.Printf("exact absorbing-chain analysis: n=%d, start %v\n", n, []int64(start))
	fmt.Printf("state space: %d configurations\n\n", exact.New(n, 3, dynamics.Polling{}).States())
	fmt.Printf("%-12s %-28s %s\n", "dynamics", "P(win) per color", "E[rounds]")

	models := []struct {
		name  string
		model dynamics.ProbModel
	}{
		{"3-majority", dynamics.ThreeMajority{}},
		{"median", dynamics.Median{}},
		{"polling", dynamics.Polling{}},
	}
	for _, m := range models {
		chain := exact.New(n, 3, m.model)
		probs, time := chain.AbsorptionFrom(start)
		fmt.Printf("%-12s (%.4f, %.4f, %.4f)     %.3f\n",
			m.name, probs[0], probs[1], probs[2], time)
	}

	fmt.Println("\nreading: polling's row is exactly the martingale (8/18, 6/18, 4/18) =")
	fmt.Println("(0.4444, 0.3333, 0.2222); 3-majority amplifies the plurality's advantage")
	fmt.Println("well beyond proportionality and finishes ~4x sooner; median favors the")
	fmt.Println("middle color (color 1 is both runner-up and median here, so it gains).")
}
