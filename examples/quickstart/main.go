// Quickstart: run the paper's 3-majority dynamics on the clique from a
// biased configuration and watch it converge to the plurality color.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -n 2000 -k 4   # tiny run (CI smoke)
package main

import (
	"flag"
	"fmt"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/rng"
)

func main() {
	var (
		n    = flag.Int64("n", 1_000_000, "number of agents")
		k    = flag.Int("k", 16, "number of colors")
		seed = flag.Uint64("seed", 42, "rng seed")
	)
	flag.Parse()

	// The paper's sufficient bias (Corollary 1 shape with practical
	// constant 1): s = sqrt(λ·n·ln n), λ = min{2k, (n/ln n)^(1/3)}.
	s := core.Corollary1Bias(*n, *k, 1.0)
	init := colorcfg.Biased(*n, *k, s)
	fmt.Printf("n=%d agents, k=%d colors, initial bias s=%d\n", *n, *k, s)
	fmt.Printf("initial: plurality=color %d, c1=%d, c2=%d\n",
		init.Plurality(), init.Sorted()[0], init.Sorted()[1])

	// The exact configuration-level engine: O(k) per round even at n=10^6.
	eng := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)

	res := core.Run(eng, core.Options{
		MaxRounds: 10_000,
		Rand:      rng.New(*seed),
		TrackBias: true,
		OnRound: func(round int, c colorcfg.Config) {
			if round%5 == 0 || c.IsMonochromatic() {
				first, _ := c.TopTwo()
				fmt.Printf("  round %3d: c_max=%7d  bias=%7d\n", round, first, c.Bias())
			}
		},
	})

	fmt.Printf("\nconsensus on color %d after %d rounds (won initial plurality: %v)\n",
		res.Winner, res.Rounds, res.WonInitialPlurality)
	lambda := core.Lambda(*n, *k)
	fmt.Printf("theory: λ=%.3g → O(λ·ln n) ≈ %.0f rounds\n",
		lambda, core.UpperBoundRounds(*n, lambda, 1))
}
