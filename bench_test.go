// Benchmark harness: one testing.B benchmark per reproduced table/figure
// (E1–E19, quick profile — run cmd/experiments -profile full for the
// heavyweight numbers; the committed EXPERIMENTS.md is the quick profile)
// plus engine micro-benchmarks for the ablations called out in
// DESIGN.md §5.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE5 -benchtime=1x
package plurality_test

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"plurality/internal/colorcfg"
	"plurality/internal/core"
	"plurality/internal/dynamics"
	"plurality/internal/engine"
	"plurality/internal/expt"
	"plurality/internal/graph"
	"plurality/internal/obs"
	"plurality/internal/rng"
	"plurality/internal/topo"
)

// benchProfile keeps per-iteration time moderate; experiments are whole
// sweeps, so -benchtime=1x is the intended usage.
var benchProfile = expt.Profile{Name: "bench", N: 10_000, Reps: 4}

func benchExperiment(b *testing.B, id string) {
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(benchProfile, uint64(2014+i))
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

func BenchmarkE1UpperBound(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Polylog(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3LowerBound(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4RuleZoo(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5HPlurality(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6BiasTightness(b *testing.B) { benchExperiment(b, "E6") }
func BenchmarkE7MedianGap(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8Adversary(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Phases(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Polling(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11Undecided(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Drift(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13KeepOwn(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Topologies(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15Ablations(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16Asynchronous(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17ExactChain(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18MeanField(b *testing.B)    { benchExperiment(b, "E18") }
func BenchmarkE19Faults(b *testing.B)       { benchExperiment(b, "E19") }

// ----- engine micro-benchmarks (ablations of DESIGN.md §5) -----

// BenchmarkEngineMultinomialRound measures the exact O(k) engine: one
// transient round at n = 10^6 for growing k. The configuration is restored
// before every Step — without the reset the chain absorbs within ~30
// rounds and the remaining iterations would measure the degenerate
// monochromatic round (one p=1 binomial) instead of k live binomial draws.
func BenchmarkEngineMultinomialRound(b *testing.B) {
	for _, k := range []int{2, 16, 128, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			r := rng.New(1)
			init := colorcfg.Biased(1_000_000, k, 10_000)
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SetConfig(init)
				e.Step(r)
			}
		})
	}
}

// BenchmarkEngineMultinomialRoundN fixes k and scales n across three
// orders of magnitude: the conditional-binomial multinomial sampler makes a
// round O(k) with n entering only through O(1) rejection sampling, so
// per-round time must be flat in n (the acceptance gate of DESIGN.md §5
// asks for 10^6 vs 10^9 within 2x).
func BenchmarkEngineMultinomialRoundN(b *testing.B) {
	for _, n := range []int64{1_000_000, 100_000_000, 1_000_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(1)
			init := colorcfg.Biased(n, 16, n/100)
			e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SetConfig(init) // keep every measured round transient
				e.Step(r)
			}
		})
	}
}

// BenchmarkEngineSampledRound measures the agent-sampling engine at
// n = 100k across worker counts (parallel scaling ablation).
func BenchmarkEngineSampledRound(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			r := rng.New(1)
			e := engine.NewCliqueSampled(dynamics.ThreeMajority{},
				colorcfg.Biased(100_000, 16, 1_000), workers, 7)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step(r)
			}
		})
	}
}

// BenchmarkEngineGraphRound measures the per-vertex engine on the clique
// (alias fast path) and on the same random-regular workload through both
// graph representations: the legacy adjacency list (interface sampling
// path) and the topo CSR (direct-slice fast path) — the CSR-vs-legacy
// ablation of DESIGN.md §8.
func BenchmarkEngineGraphRound(b *testing.B) {
	const n = 100_000
	layout := rng.New(3)
	builders := []struct {
		name string
		g    graph.Graph
	}{
		{"clique", graph.NewComplete(n)},
		{"8-regular-legacy", graph.NewRandomRegular(n, 8, rng.New(2))},
		{"8-regular-csr", topo.RandomRegular("regular:8", n, 8, rng.New(2))},
	}
	for _, tc := range builders {
		b.Run(tc.name, func(b *testing.B) {
			e := engine.NewGraphEngine(dynamics.ThreeMajority{}, tc.g,
				colorcfg.Biased(n, 8, 1_000), 4, 11, layout)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step(nil)
			}
		})
	}
}

// BenchmarkEngineGraphRoundSparse scales the CSR-sharded graph engine to
// large sparse topologies: one synchronous 3-majority round on a random
// 8-regular graph at n = 10⁶ and the headline n = 10⁷ (offsets + neighbors
// ≈ 720 MB, double-buffered colors 80 MB — comfortably inside 2 GB; the
// legacy engine path topped out around 10⁵).
func BenchmarkEngineGraphRoundSparse(b *testing.B) {
	for _, n := range []int64{1_000_000, 10_000_000} {
		g := topo.RandomRegular("regular:8", n, 8, rng.New(4)) // shared by both sampler variants
		run := func(b *testing.B, opts engine.GraphOpts) {
			e := engine.NewGraphEngineOpts(dynamics.ThreeMajority{}, g,
				colorcfg.Biased(n, 8, n/100), 4, 17, rng.New(5), opts)
			defer e.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step(nil)
			}
			// ns/agent is the unit the CI perf budget is written in (the
			// ROADMAP target is <= 50 ns/agent at n = 10⁷ on 4 workers).
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/agent")
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			run(b, engine.GraphOpts{})
		})
		b.Run(fmt.Sprintf("n=%d/sampler=batch", n), func(b *testing.B) {
			run(b, engine.GraphOpts{Sampler: engine.SamplerBatch})
		})
	}
}

// BenchmarkEngineGraphRoundSparseObserved re-runs the headline n = 10⁷
// sparse round with an obs.Recorder attached: the price of telemetry on
// the hottest path. The observer fires once per Step, outside the
// per-agent loops, so this must track BenchmarkEngineGraphRoundSparse's
// n=10000000 row within the CI overhead budget (≤ 2%, warn-only).
func BenchmarkEngineGraphRoundSparseObserved(b *testing.B) {
	const n = 10_000_000
	g := topo.RandomRegular("regular:8", n, 8, rng.New(4))
	e := engine.NewGraphEngineOpts(dynamics.ThreeMajority{}, g,
		colorcfg.Biased(n, 8, n/100), 4, 17, rng.New(5), engine.GraphOpts{})
	defer e.Close()
	if !engine.Observe(e, &obs.Recorder{}) {
		b.Fatal("graph engine is not observable")
	}
	// One untimed round absorbs the first-Step warm-up (page faults on
	// the fresh CSR, the recorder's one-time ring allocation) so the
	// samples measure the steady state the ≤2% overhead budget is
	// written against.
	e.Step(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(nil)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/agent")
}

// BenchmarkEngineGraphRoundImplicit measures the zero-materialization
// backend: one synchronous 3-majority round on an implicit 3-torus at
// n = 10⁶ (100³). Nothing but the color arrays exists in memory — this is
// the per-round cost model for the n = 10⁹ regime, where adjacency would
// be 48 GB as a CSR but is 0 B here.
func BenchmarkEngineGraphRoundImplicit(b *testing.B) {
	const n = 1_000_000 // 100³
	src, err := topo.BuildSource("torus:3", n, nil, topo.BuildOpts{Mode: topo.ModeImplicit})
	if err != nil {
		b.Fatal(err)
	}
	e := engine.NewGraphEngine(dynamics.ThreeMajority{}, src,
		colorcfg.Biased(n, 8, n/100), 4, 19, rng.New(6))
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(nil)
	}
}

// BenchmarkEngineGraphRoundMmap measures the disk-backed backend: the same
// 8-regular n = 10⁶ workload as the Sparse bench, but served from a
// memory-mapped CSR file instead of heap slices — the generic sampling
// path plus page-cache reads, the cost model for graphs bigger than RAM.
func BenchmarkEngineGraphRoundMmap(b *testing.B) {
	const n = 1_000_000
	path := filepath.Join(b.TempDir(), "regular8.csr")
	src, err := topo.BuildSource("regular:8", n, rng.New(4),
		topo.BuildOpts{Mode: topo.ModeMmap, Path: path})
	if err != nil {
		b.Fatal(err)
	}
	defer src.(io.Closer).Close()
	e := engine.NewGraphEngine(dynamics.ThreeMajority{}, src,
		colorcfg.Biased(n, 8, n/100), 4, 17, rng.New(5))
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(nil)
	}
}

// BenchmarkEngineUndecidedRound measures the exact undecided-state engine.
func BenchmarkEngineUndecidedRound(b *testing.B) {
	r := rng.New(1)
	e := engine.NewUndecidedExact(colorcfg.Biased(1_000_000, 64, 10_000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Step(r)
	}
}

// BenchmarkTieBreakVariants compares the two tie-break implementations
// (the paper notes they realize the same process; the bench shows the
// uniform variant's extra randomness cost).
func BenchmarkTieBreakVariants(b *testing.B) {
	for name, rule := range map[string]dynamics.Rule{
		"first":   dynamics.ThreeMajority{},
		"uniform": dynamics.ThreeMajority{UniformTie: true},
	} {
		b.Run(name, func(b *testing.B) {
			r := rng.New(1)
			s := []colorcfg.Color{3, 1, 2}
			var sink colorcfg.Color
			for i := 0; i < b.N; i++ {
				sink += rule.Apply(s, r)
			}
			_ = sink
		})
	}
}

// BenchmarkFullRunConvergence measures an end-to-end Run to consensus at
// n = 10^6 (the headline workload of examples/quickstart).
func BenchmarkFullRunConvergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := int64(1_000_000)
		init := colorcfg.Biased(n, 16, core.Corollary1Bias(n, 16, 1.0))
		e := engine.NewCliqueMultinomial(dynamics.ThreeMajority{}, init)
		res := core.Run(e, core.Options{MaxRounds: 10_000, Rand: rng.New(uint64(i))})
		if !res.WonInitialPlurality {
			b.Fatal("benchmark run failed to converge")
		}
	}
}
