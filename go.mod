module plurality

go 1.24
