// Package plurality is a Go reproduction of "Simple Dynamics for Plurality
// Consensus" (Becchetti, Clementi, Natale, Pasquale, Silvestri, Trevisan —
// SPAA 2014; Distributed Computing 30(4), 2017).
//
// The library implements the paper's 3-majority dynamics together with
// every comparator it discusses (h-plurality, median, polling, 2-choices,
// the 3-input rule class of Theorem 3, and the undecided-state dynamics),
// exact configuration-level and agent-level simulation engines for the
// clique and general topologies, the F-bounded dynamic adversary of
// Corollary 4, and a benchmark harness (internal/expt, cmd/experiments)
// that regenerates every theorem-level result as a table — see DESIGN.md
// for the system inventory and EXPERIMENTS.md for paper-vs-measured
// outcomes.
//
// All engine randomness flows through the sampling kernel layer
// internal/dist (exact O(1) binomial, O(k) conditional-binomial
// multinomial, Vose alias tables), which is what makes the exact clique
// engine's round cost independent of n up to 10^9 agents and every
// engine's steady-state Step allocation-free — see DESIGN.md §5.
//
// Engine fidelity is certified, not assumed: internal/validate
// statistically cross-validates every engine against the exact Markov
// chain and the mean-field limit, pins golden sampling traces, and runs
// a mis-sampling mutant as a negative control (go run ./cmd/validate;
// DESIGN.md §7).
//
// Topologies beyond the clique are first-class: internal/topo provides a
// CSR graph store with a direct-sampling engine fast path (graph rounds
// at n up to 10^7), a generator registry spanning expanders to bottleneck
// graphs (smallworld, ba, sbm, hypercube, torus:D, barbell, ...), and
// spectral diagnostics (internal/topo/spectral) relating each family's
// spectral gap to its consensus time — see DESIGN.md §8 and experiment
// E20.
//
// Start with examples/quickstart, or:
//
//	go run ./cmd/plurality -n 1000000 -k 16 -bias auto
//	go run ./cmd/experiments -profile quick
//	go run ./cmd/pluralityd -addr :8080   # HTTP job service, DESIGN.md §6
package plurality
